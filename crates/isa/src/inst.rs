//! The dynamic instruction record: what one trace entry carries.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{ArchReg, InstructionError, OpClass, RegClass, Unit};

/// A memory reference carried by a load or store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemRef {
    /// Effective (virtual) byte address.
    pub addr: u64,
    /// Access size in bytes (typically 4 or 8).
    pub size: u8,
}

impl MemRef {
    /// Creates a memory reference.
    #[must_use]
    pub fn new(addr: u64, size: u8) -> Self {
        MemRef { addr, size }
    }

    /// Whether this reference overlaps another (byte-range intersection).
    ///
    /// Used by the store-address queue to decide whether a load may bypass a
    /// pending store.
    #[must_use]
    pub fn overlaps(&self, other: &MemRef) -> bool {
        let a_end = self.addr.saturating_add(u64::from(self.size));
        let b_end = other.addr.saturating_add(u64::from(other.size));
        self.addr < b_end && other.addr < a_end
    }
}

impl fmt::Display for MemRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:#x}+{}]", self.addr, self.size)
    }
}

/// The dynamic outcome of a control-transfer instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BranchInfo {
    /// Whether the branch was taken in the trace.
    pub taken: bool,
    /// The target PC (meaningful when taken).
    pub target: u64,
}

impl BranchInfo {
    /// Creates a branch outcome record.
    #[must_use]
    pub fn new(taken: bool, target: u64) -> Self {
        BranchInfo { taken, target }
    }

    /// A taken branch to `target`.
    #[must_use]
    pub fn taken(target: u64) -> Self {
        BranchInfo {
            taken: true,
            target,
        }
    }

    /// A not-taken branch (fall-through).
    #[must_use]
    pub fn not_taken() -> Self {
        BranchInfo {
            taken: false,
            target: 0,
        }
    }
}

/// One dynamic instruction, as recorded in (or synthesised into) a trace.
///
/// The struct is deliberately small and `Copy`: the simulator streams tens of
/// millions of them.
///
/// # Example
///
/// ```
/// use dsmt_isa::{ArchReg, Instruction, OpClass};
///
/// let add = Instruction::new(0x2000, OpClass::FpAdd)
///     .with_dest(ArchReg::fp(3))
///     .with_src1(ArchReg::fp(1))
///     .with_src2(ArchReg::fp(2));
/// assert!(add.validate().is_ok());
/// assert_eq!(add.to_string(), "0x2000: fadd f3, f1, f2");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Instruction {
    /// Program counter of the instruction.
    pub pc: u64,
    /// Operation class.
    pub op: OpClass,
    /// Destination register, if any.
    pub dest: Option<ArchReg>,
    /// First source register, if any.
    pub src1: Option<ArchReg>,
    /// Second source register, if any.
    pub src2: Option<ArchReg>,
    /// Memory reference for loads and stores.
    pub mem: Option<MemRef>,
    /// Dynamic outcome for control transfers.
    pub branch: Option<BranchInfo>,
}

impl Instruction {
    /// Creates a bare instruction of the given class at the given PC.
    #[must_use]
    pub fn new(pc: u64, op: OpClass) -> Self {
        Instruction {
            pc,
            op,
            dest: None,
            src1: None,
            src2: None,
            mem: None,
            branch: None,
        }
    }

    /// Sets the destination register.
    #[must_use]
    pub fn with_dest(mut self, dest: ArchReg) -> Self {
        self.dest = Some(dest);
        self
    }

    /// Sets the first source register.
    #[must_use]
    pub fn with_src1(mut self, src: ArchReg) -> Self {
        self.src1 = Some(src);
        self
    }

    /// Sets the second source register.
    #[must_use]
    pub fn with_src2(mut self, src: ArchReg) -> Self {
        self.src2 = Some(src);
        self
    }

    /// Sets the memory reference.
    #[must_use]
    pub fn with_mem(mut self, addr: u64, size: u8) -> Self {
        self.mem = Some(MemRef::new(addr, size));
        self
    }

    /// Sets the branch outcome.
    #[must_use]
    pub fn with_branch(mut self, info: BranchInfo) -> Self {
        self.branch = Some(info);
        self
    }

    /// The unit that executes this instruction (dispatch steering).
    #[must_use]
    pub fn unit(&self) -> Unit {
        crate::steer(self.op)
    }

    /// Iterator over the present source registers (skipping `None` and
    /// hard-wired zero registers, which never create dependences).
    pub fn sources(&self) -> impl Iterator<Item = ArchReg> + '_ {
        [self.src1, self.src2]
            .into_iter()
            .flatten()
            .filter(|r| !r.is_zero())
    }

    /// The destination register if it creates a real (non-zero-register)
    /// definition.
    #[must_use]
    pub fn real_dest(&self) -> Option<ArchReg> {
        self.dest.filter(|r| !r.is_zero())
    }

    /// Checks internal consistency of the record.
    ///
    /// # Errors
    ///
    /// Returns an [`InstructionError`] when the operation class and the
    /// attached operands disagree (missing memory reference on a load,
    /// FP load writing an integer register, branch without an outcome, ...).
    pub fn validate(&self) -> Result<(), InstructionError> {
        if self.op.is_mem() && self.mem.is_none() {
            return Err(InstructionError::MissingMemRef);
        }
        if !self.op.is_mem() && self.mem.is_some() {
            return Err(InstructionError::UnexpectedMemRef);
        }
        if self.op.is_control() && self.branch.is_none() {
            return Err(InstructionError::MissingBranchInfo);
        }
        if !self.op.is_control() && self.branch.is_some() {
            return Err(InstructionError::UnexpectedBranchInfo);
        }
        if (self.op.is_load() || self.op.is_fp_compute() || self.op.is_int_compute())
            && self.dest.is_none()
        {
            return Err(InstructionError::MissingDest);
        }
        if let Some(dest) = self.dest {
            let want_fp = self.op.writes_fp();
            let want_int = self.op.writes_int();
            if want_fp && dest.class() != RegClass::Fp {
                return Err(InstructionError::DestClassMismatch);
            }
            if want_int && dest.class() != RegClass::Int {
                return Err(InstructionError::DestClassMismatch);
            }
        }
        Ok(())
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}: {}", self.pc, self.op)?;
        let mut first = true;
        let mut sep = |f: &mut fmt::Formatter<'_>| -> fmt::Result {
            if first {
                first = false;
                write!(f, " ")
            } else {
                write!(f, ", ")
            }
        };
        if let Some(d) = self.dest {
            sep(f)?;
            write!(f, "{d}")?;
        }
        if let Some(s) = self.src1 {
            sep(f)?;
            write!(f, "{s}")?;
        }
        if let Some(s) = self.src2 {
            sep(f)?;
            write!(f, "{s}")?;
        }
        if let Some(m) = self.mem {
            sep(f)?;
            write!(f, "{m}")?;
        }
        if let Some(b) = self.branch {
            sep(f)?;
            if b.taken {
                write!(f, "-> {:#x}", b.target)?;
            } else {
                write!(f, "not-taken")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp_load() -> Instruction {
        Instruction::new(0x1000, OpClass::LoadFp)
            .with_dest(ArchReg::fp(2))
            .with_src1(ArchReg::int(4))
            .with_mem(0x8000, 8)
    }

    #[test]
    fn builder_sets_fields() {
        let i = fp_load();
        assert_eq!(i.pc, 0x1000);
        assert_eq!(i.op, OpClass::LoadFp);
        assert_eq!(i.dest, Some(ArchReg::fp(2)));
        assert_eq!(i.src1, Some(ArchReg::int(4)));
        assert_eq!(i.src2, None);
        assert_eq!(i.mem, Some(MemRef::new(0x8000, 8)));
    }

    #[test]
    fn validate_accepts_well_formed() {
        assert!(fp_load().validate().is_ok());
        let br = Instruction::new(0x4, OpClass::CondBranch)
            .with_src1(ArchReg::int(1))
            .with_branch(BranchInfo::taken(0x100));
        assert!(br.validate().is_ok());
        let nop = Instruction::new(0x8, OpClass::Nop);
        assert!(nop.validate().is_ok());
    }

    #[test]
    fn validate_rejects_missing_mem() {
        let i = Instruction::new(0x0, OpClass::LoadInt).with_dest(ArchReg::int(1));
        assert_eq!(i.validate(), Err(InstructionError::MissingMemRef));
    }

    #[test]
    fn validate_rejects_unexpected_mem() {
        let i = Instruction::new(0x0, OpClass::IntAlu)
            .with_dest(ArchReg::int(1))
            .with_mem(0x10, 8);
        assert_eq!(i.validate(), Err(InstructionError::UnexpectedMemRef));
    }

    #[test]
    fn validate_rejects_missing_branch_info() {
        let i = Instruction::new(0x0, OpClass::CondBranch);
        assert_eq!(i.validate(), Err(InstructionError::MissingBranchInfo));
    }

    #[test]
    fn validate_rejects_unexpected_branch_info() {
        let i = Instruction::new(0x0, OpClass::IntAlu)
            .with_dest(ArchReg::int(1))
            .with_branch(BranchInfo::not_taken());
        assert_eq!(i.validate(), Err(InstructionError::UnexpectedBranchInfo));
    }

    #[test]
    fn validate_rejects_missing_dest() {
        let i = Instruction::new(0x0, OpClass::FpAdd).with_src1(ArchReg::fp(0));
        assert_eq!(i.validate(), Err(InstructionError::MissingDest));
    }

    #[test]
    fn validate_rejects_dest_class_mismatch() {
        let i = Instruction::new(0x0, OpClass::LoadFp)
            .with_dest(ArchReg::int(3))
            .with_mem(0x10, 8);
        assert_eq!(i.validate(), Err(InstructionError::DestClassMismatch));
        let i = Instruction::new(0x0, OpClass::IntAlu).with_dest(ArchReg::fp(3));
        assert_eq!(i.validate(), Err(InstructionError::DestClassMismatch));
    }

    #[test]
    fn sources_skip_zero_registers() {
        let i = Instruction::new(0x0, OpClass::IntAlu)
            .with_dest(ArchReg::int(1))
            .with_src1(ArchReg::int(31))
            .with_src2(ArchReg::int(5));
        let srcs: Vec<_> = i.sources().collect();
        assert_eq!(srcs, vec![ArchReg::int(5)]);
    }

    #[test]
    fn real_dest_skips_zero_register() {
        let i = Instruction::new(0x0, OpClass::IntAlu).with_dest(ArchReg::int(31));
        assert_eq!(i.real_dest(), None);
        let i = Instruction::new(0x0, OpClass::IntAlu).with_dest(ArchReg::int(7));
        assert_eq!(i.real_dest(), Some(ArchReg::int(7)));
    }

    #[test]
    fn memref_overlap() {
        let a = MemRef::new(0x100, 8);
        assert!(a.overlaps(&MemRef::new(0x100, 8)));
        assert!(a.overlaps(&MemRef::new(0x104, 4)));
        assert!(a.overlaps(&MemRef::new(0xf8, 16)));
        assert!(!a.overlaps(&MemRef::new(0x108, 8)));
        assert!(!a.overlaps(&MemRef::new(0xf8, 8)));
    }

    #[test]
    fn unit_steering_via_method() {
        assert_eq!(fp_load().unit(), Unit::Ap);
        let fadd = Instruction::new(0x0, OpClass::FpAdd).with_dest(ArchReg::fp(0));
        assert_eq!(fadd.unit(), Unit::Ep);
    }

    #[test]
    fn display_formats() {
        assert_eq!(fp_load().to_string(), "0x1000: ldt f2, r4, [0x8000+8]");
        let br = Instruction::new(0x4, OpClass::CondBranch)
            .with_src1(ArchReg::int(1))
            .with_branch(BranchInfo::taken(0x100));
        assert_eq!(br.to_string(), "0x4: br.c r1, -> 0x100");
        let nt = Instruction::new(0x4, OpClass::CondBranch)
            .with_src1(ArchReg::int(1))
            .with_branch(BranchInfo::not_taken());
        assert!(nt.to_string().ends_with("not-taken"));
    }
}
