//! Canonical text rendering of dynamic instructions (the disassembler half
//! of the trace text format).
//!
//! One instruction renders to one line:
//!
//! ```text
//! 0x<pc>: <mnemonic>[ <operand>[, <operand>]*]
//! ```
//!
//! where operands appear in a fixed order — `dest`, `src1`, `src2`, the
//! memory reference (`[0x<addr>+<size>]`), then the branch outcome
//! (`-> 0x<target>` when taken, `not-taken` otherwise) — and absent fields
//! are simply omitted. The rendering is exactly [`Instruction`]'s `Display`
//! implementation; this module gives it a name, a multi-line form and a
//! canonicality predicate so the `dsmt-asm` crate can parse the text back
//! and guarantee `render → parse → encode` reproduces the original bytes.
//!
//! Because absent fields are omitted, a register list is only unambiguous
//! when the present registers fill a *prefix* of the operand order: `dest`,
//! `src1`, `src2` for operations that write a register, `src1`, `src2` for
//! those that do not (stores, branches, jumps, nops). [`is_canonical`]
//! checks that property (plus `target == 0` for not-taken branches, whose
//! target the text does not carry); only canonical instructions round-trip
//! byte-identically.

use crate::Instruction;

/// Renders one instruction to its canonical one-line text form.
#[must_use]
pub fn render_instruction(inst: &Instruction) -> String {
    inst.to_string()
}

/// Renders a sequence of instructions, one line each, with a trailing
/// newline after every line.
#[must_use]
pub fn render_trace(insts: &[Instruction]) -> String {
    let mut out = String::with_capacity(insts.len() * 32);
    for inst in insts {
        out.push_str(&inst.to_string());
        out.push('\n');
    }
    out
}

/// Whether `inst` is in canonical text form: valid, registers filling a
/// prefix of the operand order, and a zero target on not-taken branches.
///
/// The text rendering omits absent operands, so `ialu r1, r2` cannot
/// distinguish `src1 = r2` from `src2 = r2`; parsers assign parsed
/// registers in prefix order, and only instructions already in that shape
/// survive `render → parse` unchanged.
#[must_use]
pub fn is_canonical(inst: &Instruction) -> bool {
    if inst.validate().is_err() {
        return false;
    }
    let writes = inst.op.writes_int() || inst.op.writes_fp();
    let prefix_ok = if writes {
        // dest, src1, src2 must be populated left to right.
        !(inst.dest.is_none() && (inst.src1.is_some() || inst.src2.is_some()))
            && !(inst.src1.is_none() && inst.src2.is_some())
    } else {
        // No dest slot: src1 then src2.
        inst.dest.is_none() && !(inst.src1.is_none() && inst.src2.is_some())
    };
    let branch_ok = match inst.branch {
        Some(b) => b.taken || b.target == 0,
        None => true,
    };
    prefix_ok && branch_ok
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ArchReg, BranchInfo, OpClass};

    #[test]
    fn rendering_matches_display() {
        let ld = Instruction::new(0x1000, OpClass::LoadFp)
            .with_dest(ArchReg::fp(2))
            .with_src1(ArchReg::int(4))
            .with_mem(0x8000, 8);
        assert_eq!(render_instruction(&ld), "0x1000: ldt f2, r4, [0x8000+8]");
        let text = render_trace(&[ld, Instruction::new(0x1004, OpClass::Nop)]);
        assert_eq!(text, "0x1000: ldt f2, r4, [0x8000+8]\n0x1004: nop\n");
    }

    #[test]
    fn canonical_accepts_prefix_operands() {
        let alu = Instruction::new(0, OpClass::IntAlu)
            .with_dest(ArchReg::int(1))
            .with_src1(ArchReg::int(2));
        assert!(is_canonical(&alu));
        let st = Instruction::new(0, OpClass::StoreInt)
            .with_src1(ArchReg::int(1))
            .with_src2(ArchReg::int(2))
            .with_mem(0x10, 8);
        assert!(is_canonical(&st));
        assert!(is_canonical(&Instruction::new(4, OpClass::Nop)));
    }

    #[test]
    fn canonical_rejects_gapped_operands() {
        // src2 without src1: the text would collapse it into src1.
        let mut st = Instruction::new(0, OpClass::StoreInt).with_mem(0x10, 8);
        st.src2 = Some(ArchReg::int(2));
        assert!(!is_canonical(&st));
        // dest-writing op with src2 but no src1.
        let mut alu = Instruction::new(0, OpClass::IntAlu).with_dest(ArchReg::int(1));
        alu.src2 = Some(ArchReg::int(3));
        assert!(!is_canonical(&alu));
        // A store must not carry a dest (validate allows it; text order
        // would misparse it as src1 — but validate() actually permits dest
        // on stores, so the canonical check rejects it).
        let mut st = Instruction::new(0, OpClass::StoreInt).with_mem(0x10, 8);
        st.dest = Some(ArchReg::int(1));
        assert!(!is_canonical(&st));
    }

    #[test]
    fn canonical_rejects_not_taken_with_target() {
        let b = Instruction::new(0, OpClass::CondBranch)
            .with_src1(ArchReg::int(1))
            .with_branch(BranchInfo::new(false, 0x40));
        assert!(!is_canonical(&b));
        let b = Instruction::new(0, OpClass::CondBranch)
            .with_src1(ArchReg::int(1))
            .with_branch(BranchInfo::not_taken());
        assert!(is_canonical(&b));
    }

    #[test]
    fn canonical_rejects_invalid_instructions() {
        // Load without a memory reference fails validate().
        let ld = Instruction::new(0, OpClass::LoadInt).with_dest(ArchReg::int(1));
        assert!(!is_canonical(&ld));
    }
}
