//! Dynamic operation classes.
//!
//! Trace-driven simulation does not need full opcode semantics, only the
//! classification that determines steering (AP vs EP), functional-unit
//! latency and memory behaviour.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The class of a dynamic instruction.
///
/// The classes mirror the distinctions the HPCA'99 paper needs:
/// integer vs floating-point computation (steering and functional-unit
/// latency), loads vs stores (cache behaviour, store-address-queue
/// occupancy), and control transfers (branch prediction, control
/// speculation limits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum OpClass {
    /// Integer ALU operation (add, logical, shift, compare). Executes on the AP.
    IntAlu,
    /// Integer multiply. Executes on the AP.
    IntMul,
    /// Floating-point add/subtract/compare. Executes on the EP.
    FpAdd,
    /// Floating-point multiply. Executes on the EP.
    FpMul,
    /// Floating-point divide / square root. Executes on the EP.
    FpDiv,
    /// Integer load (destination in the integer/AP register file).
    LoadInt,
    /// Floating-point load (destination in the FP/EP register file).
    LoadFp,
    /// Integer store.
    StoreInt,
    /// Floating-point store.
    StoreFp,
    /// Conditional branch.
    CondBranch,
    /// Unconditional direct branch.
    UncondBranch,
    /// Indirect jump (jsr/ret style).
    Jump,
    /// No-operation (still consumes fetch/dispatch bandwidth).
    Nop,
}

impl OpClass {
    /// All operation classes, in a fixed order (useful for building
    /// per-class statistics tables).
    pub const ALL: [OpClass; 13] = [
        OpClass::IntAlu,
        OpClass::IntMul,
        OpClass::FpAdd,
        OpClass::FpMul,
        OpClass::FpDiv,
        OpClass::LoadInt,
        OpClass::LoadFp,
        OpClass::StoreInt,
        OpClass::StoreFp,
        OpClass::CondBranch,
        OpClass::UncondBranch,
        OpClass::Jump,
        OpClass::Nop,
    ];

    /// Whether the instruction reads memory.
    #[must_use]
    pub fn is_load(&self) -> bool {
        matches!(self, OpClass::LoadInt | OpClass::LoadFp)
    }

    /// Whether the instruction writes memory.
    #[must_use]
    pub fn is_store(&self) -> bool {
        matches!(self, OpClass::StoreInt | OpClass::StoreFp)
    }

    /// Whether the instruction accesses memory at all.
    #[must_use]
    pub fn is_mem(&self) -> bool {
        self.is_load() || self.is_store()
    }

    /// Whether the instruction is a control transfer.
    #[must_use]
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            OpClass::CondBranch | OpClass::UncondBranch | OpClass::Jump
        )
    }

    /// Whether the instruction is a *conditional* control transfer (the only
    /// kind that occupies one of the AP's limited unresolved-branch slots).
    #[must_use]
    pub fn is_cond_branch(&self) -> bool {
        matches!(self, OpClass::CondBranch)
    }

    /// Whether the instruction is floating-point *computation* (executes on
    /// an EP functional unit).
    #[must_use]
    pub fn is_fp_compute(&self) -> bool {
        matches!(self, OpClass::FpAdd | OpClass::FpMul | OpClass::FpDiv)
    }

    /// Whether the instruction is integer computation (executes on an AP
    /// functional unit).
    #[must_use]
    pub fn is_int_compute(&self) -> bool {
        matches!(self, OpClass::IntAlu | OpClass::IntMul)
    }

    /// Whether the instruction produces a floating-point result.
    #[must_use]
    pub fn writes_fp(&self) -> bool {
        self.is_fp_compute() || matches!(self, OpClass::LoadFp)
    }

    /// Whether the instruction produces an integer result.
    #[must_use]
    pub fn writes_int(&self) -> bool {
        self.is_int_compute() || matches!(self, OpClass::LoadInt)
    }

    /// A compact numeric tag used by the binary trace encoding.
    #[must_use]
    pub fn tag(&self) -> u8 {
        match self {
            OpClass::IntAlu => 0,
            OpClass::IntMul => 1,
            OpClass::FpAdd => 2,
            OpClass::FpMul => 3,
            OpClass::FpDiv => 4,
            OpClass::LoadInt => 5,
            OpClass::LoadFp => 6,
            OpClass::StoreInt => 7,
            OpClass::StoreFp => 8,
            OpClass::CondBranch => 9,
            OpClass::UncondBranch => 10,
            OpClass::Jump => 11,
            OpClass::Nop => 12,
        }
    }

    /// Inverse of [`OpClass::tag`]. Returns `None` for unknown tags.
    #[must_use]
    pub fn from_tag(tag: u8) -> Option<Self> {
        OpClass::ALL.get(tag as usize).copied()
    }

    /// A short lowercase mnemonic, used by `Display` and trace dumps.
    #[must_use]
    pub fn mnemonic(&self) -> &'static str {
        match self {
            OpClass::IntAlu => "ialu",
            OpClass::IntMul => "imul",
            OpClass::FpAdd => "fadd",
            OpClass::FpMul => "fmul",
            OpClass::FpDiv => "fdiv",
            OpClass::LoadInt => "ldq",
            OpClass::LoadFp => "ldt",
            OpClass::StoreInt => "stq",
            OpClass::StoreFp => "stt",
            OpClass::CondBranch => "br.c",
            OpClass::UncondBranch => "br",
            OpClass::Jump => "jmp",
            OpClass::Nop => "nop",
        }
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_store_classification() {
        assert!(OpClass::LoadInt.is_load());
        assert!(OpClass::LoadFp.is_load());
        assert!(!OpClass::StoreInt.is_load());
        assert!(OpClass::StoreInt.is_store());
        assert!(OpClass::StoreFp.is_store());
        assert!(!OpClass::LoadFp.is_store());
        assert!(OpClass::LoadFp.is_mem());
        assert!(OpClass::StoreInt.is_mem());
        assert!(!OpClass::IntAlu.is_mem());
        assert!(!OpClass::FpMul.is_mem());
    }

    #[test]
    fn control_classification() {
        assert!(OpClass::CondBranch.is_control());
        assert!(OpClass::UncondBranch.is_control());
        assert!(OpClass::Jump.is_control());
        assert!(!OpClass::IntAlu.is_control());
        assert!(OpClass::CondBranch.is_cond_branch());
        assert!(!OpClass::UncondBranch.is_cond_branch());
    }

    #[test]
    fn compute_classification() {
        assert!(OpClass::FpAdd.is_fp_compute());
        assert!(OpClass::FpMul.is_fp_compute());
        assert!(OpClass::FpDiv.is_fp_compute());
        assert!(!OpClass::LoadFp.is_fp_compute());
        assert!(OpClass::IntAlu.is_int_compute());
        assert!(OpClass::IntMul.is_int_compute());
        assert!(!OpClass::LoadInt.is_int_compute());
    }

    #[test]
    fn result_class() {
        assert!(OpClass::LoadFp.writes_fp());
        assert!(OpClass::FpAdd.writes_fp());
        assert!(!OpClass::LoadInt.writes_fp());
        assert!(OpClass::LoadInt.writes_int());
        assert!(OpClass::IntAlu.writes_int());
        assert!(!OpClass::FpMul.writes_int());
        assert!(!OpClass::StoreInt.writes_int());
    }

    #[test]
    fn tag_roundtrip() {
        for op in OpClass::ALL {
            assert_eq!(OpClass::from_tag(op.tag()), Some(op));
        }
        assert_eq!(OpClass::from_tag(200), None);
    }

    #[test]
    fn tags_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for op in OpClass::ALL {
            assert!(seen.insert(op.tag()), "duplicate tag for {op:?}");
        }
    }

    #[test]
    fn display_uses_mnemonic() {
        assert_eq!(OpClass::FpMul.to_string(), "fmul");
        assert_eq!(OpClass::LoadInt.to_string(), "ldq");
        assert_eq!(OpClass::CondBranch.to_string(), "br.c");
    }
}
