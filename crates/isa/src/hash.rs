//! FNV-1a hashing for checksummed binary formats.
//!
//! The store crate carries its own copy for the `.dsrs` segment layout;
//! this one lives at the bottom of the dependency graph so the trace-file
//! and assembled-program formats (which cannot depend on the store) share
//! the same checksum without a cycle.

/// FNV-1a 64-bit hash of `bytes` (offset basis `0xcbf29ce484222325`,
/// prime `0x100000001b3`).
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn sensitive_to_every_byte() {
        let base = fnv1a64(b"hello world");
        assert_ne!(base, fnv1a64(b"hello worle"));
        assert_ne!(base, fnv1a64(b"iello world"));
        assert_ne!(base, fnv1a64(b"hello worl"));
    }
}
