//! Architectural registers.
//!
//! The model follows the DEC Alpha register architecture used by the paper's
//! traces: 32 integer registers (`r0`–`r31`, with `r31` hard-wired to zero)
//! and 32 floating-point registers (`f0`–`f31`, with `f31` hard-wired to
//! zero).

use std::fmt;

use serde::{Deserialize, Serialize};

/// Number of architectural integer registers (Alpha: `r0`–`r31`).
pub const NUM_INT_REGS: usize = 32;
/// Number of architectural floating-point registers (Alpha: `f0`–`f31`).
pub const NUM_FP_REGS: usize = 32;

/// The register file an architectural register belongs to.
///
/// In the decoupled architecture, integer registers are renamed onto the
/// Address Processor's physical register file and floating-point registers
/// onto the Execute Processor's physical register file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum RegClass {
    /// Integer register file (lives in the AP).
    Int,
    /// Floating-point register file (lives in the EP).
    Fp,
}

impl fmt::Display for RegClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegClass::Int => write!(f, "int"),
            RegClass::Fp => write!(f, "fp"),
        }
    }
}

/// An architectural register: a register class plus an index.
///
/// # Example
///
/// ```
/// use dsmt_isa::{ArchReg, RegClass};
///
/// let r4 = ArchReg::int(4);
/// assert_eq!(r4.class(), RegClass::Int);
/// assert_eq!(r4.index(), 4);
/// assert!(!r4.is_zero());
/// assert!(ArchReg::int(31).is_zero());
/// assert_eq!(format!("{}", ArchReg::fp(7)), "f7");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ArchReg {
    class: RegClass,
    index: u8,
}

impl ArchReg {
    /// Creates an integer register `r<index>`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    #[must_use]
    pub fn int(index: u8) -> Self {
        assert!(
            (index as usize) < NUM_INT_REGS,
            "integer register index {index} out of range"
        );
        ArchReg {
            class: RegClass::Int,
            index,
        }
    }

    /// Creates a floating-point register `f<index>`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    #[must_use]
    pub fn fp(index: u8) -> Self {
        assert!(
            (index as usize) < NUM_FP_REGS,
            "fp register index {index} out of range"
        );
        ArchReg {
            class: RegClass::Fp,
            index,
        }
    }

    /// Creates a register from a class and an index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    #[must_use]
    pub fn new(class: RegClass, index: u8) -> Self {
        match class {
            RegClass::Int => ArchReg::int(index),
            RegClass::Fp => ArchReg::fp(index),
        }
    }

    /// The register class (integer or floating point).
    #[must_use]
    pub fn class(&self) -> RegClass {
        self.class
    }

    /// The register index within its class (0..32).
    #[must_use]
    pub fn index(&self) -> u8 {
        self.index
    }

    /// Whether this is the hard-wired zero register (`r31` / `f31`).
    ///
    /// Zero registers are never renamed and are always ready.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.index as usize == 31
    }

    /// Whether this register belongs to the integer file.
    #[must_use]
    pub fn is_int(&self) -> bool {
        self.class == RegClass::Int
    }

    /// Whether this register belongs to the floating-point file.
    #[must_use]
    pub fn is_fp(&self) -> bool {
        self.class == RegClass::Fp
    }

    /// A dense index across both register files, useful for table lookups:
    /// integer registers map to `0..32`, FP registers to `32..64`.
    #[must_use]
    pub fn flat_index(&self) -> usize {
        match self.class {
            RegClass::Int => self.index as usize,
            RegClass::Fp => NUM_INT_REGS + self.index as usize,
        }
    }

    /// Inverse of [`ArchReg::flat_index`].
    ///
    /// # Panics
    ///
    /// Panics if `flat >= 64`.
    #[must_use]
    pub fn from_flat_index(flat: usize) -> Self {
        assert!(flat < NUM_INT_REGS + NUM_FP_REGS, "flat index out of range");
        if flat < NUM_INT_REGS {
            ArchReg::int(flat as u8)
        } else {
            ArchReg::fp((flat - NUM_INT_REGS) as u8)
        }
    }
}

impl fmt::Display for ArchReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.class {
            RegClass::Int => write!(f, "r{}", self.index),
            RegClass::Fp => write!(f, "f{}", self.index),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_and_fp_constructors() {
        let r = ArchReg::int(3);
        assert_eq!(r.class(), RegClass::Int);
        assert_eq!(r.index(), 3);
        assert!(r.is_int());
        assert!(!r.is_fp());

        let f = ArchReg::fp(9);
        assert_eq!(f.class(), RegClass::Fp);
        assert_eq!(f.index(), 9);
        assert!(f.is_fp());
    }

    #[test]
    fn zero_registers() {
        assert!(ArchReg::int(31).is_zero());
        assert!(ArchReg::fp(31).is_zero());
        assert!(!ArchReg::int(0).is_zero());
        assert!(!ArchReg::fp(30).is_zero());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn int_index_out_of_range_panics() {
        let _ = ArchReg::int(32);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn fp_index_out_of_range_panics() {
        let _ = ArchReg::fp(255);
    }

    #[test]
    fn flat_index_roundtrip() {
        for i in 0..64 {
            let r = ArchReg::from_flat_index(i);
            assert_eq!(r.flat_index(), i);
        }
    }

    #[test]
    fn flat_index_partition() {
        assert_eq!(ArchReg::int(0).flat_index(), 0);
        assert_eq!(ArchReg::int(31).flat_index(), 31);
        assert_eq!(ArchReg::fp(0).flat_index(), 32);
        assert_eq!(ArchReg::fp(31).flat_index(), 63);
    }

    #[test]
    fn display_format() {
        assert_eq!(ArchReg::int(5).to_string(), "r5");
        assert_eq!(ArchReg::fp(12).to_string(), "f12");
        assert_eq!(RegClass::Int.to_string(), "int");
        assert_eq!(RegClass::Fp.to_string(), "fp");
    }

    #[test]
    fn ordering_and_equality() {
        assert_eq!(ArchReg::int(4), ArchReg::int(4));
        assert_ne!(ArchReg::int(4), ArchReg::fp(4));
        assert!(ArchReg::int(4) < ArchReg::fp(0));
    }

    #[test]
    fn new_dispatches_on_class() {
        assert_eq!(ArchReg::new(RegClass::Int, 7), ArchReg::int(7));
        assert_eq!(ArchReg::new(RegClass::Fp, 7), ArchReg::fp(7));
    }
}
