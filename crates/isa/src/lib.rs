//! # dsmt-isa
//!
//! An Alpha-like RISC instruction model used by the DSMT (Decoupled
//! Simultaneous MultiThreading) simulator, a reproduction of
//! *"The Synergy of Multithreading and Access/Execute Decoupling"*
//! (Parcerisa & González, HPCA 1999).
//!
//! The paper's simulator is trace driven: it never interprets real opcode
//! encodings, it only needs to know, for every dynamic instruction,
//!
//! * its **operation class** (integer ALU, FP add/mul/div, load, store,
//!   branch, ...) — see [`OpClass`],
//! * its **architectural register** operands — see [`ArchReg`],
//! * the **effective address** of memory operations — see [`MemRef`],
//! * the **outcome** of branches — see [`BranchInfo`].
//!
//! [`Instruction`] bundles those together, and [`steer`] implements the
//! paper's dispatch steering rule (integer/memory/control instructions go to
//! the Address Processor, floating-point computation goes to the Execute
//! Processor).
//!
//! # Example
//!
//! ```
//! use dsmt_isa::{ArchReg, Instruction, OpClass, Unit, steer};
//!
//! // An FP load: executed by the AP (it is a memory instruction) but its
//! // destination lives in the EP register file.
//! let ld = Instruction::new(0x1000, OpClass::LoadFp)
//!     .with_dest(ArchReg::fp(2))
//!     .with_src1(ArchReg::int(4))
//!     .with_mem(0x8000_0000, 8);
//! assert_eq!(steer(ld.op), Unit::Ap);
//! assert!(ld.op.is_load());
//! assert!(ld.validate().is_ok());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod encode;
mod error;
mod hash;
mod inst;
mod op;
mod reg;
mod steer;
pub mod text;
pub mod varint;

pub use encode::{decode_instruction, decode_stream, encode_instruction, encode_stream};
pub use error::InstructionError;
pub use hash::fnv1a64;
pub use inst::{BranchInfo, Instruction, MemRef};
pub use op::OpClass;
pub use reg::{ArchReg, RegClass, NUM_FP_REGS, NUM_INT_REGS};
pub use steer::{steer, Unit};
pub use varint::{get_ivarint, get_uvarint, put_ivarint, put_uvarint, VarintError};
