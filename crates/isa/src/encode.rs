//! Compact binary encoding of instructions for on-disk traces.
//!
//! The format is a simple self-describing byte stream:
//!
//! ```text
//! op-tag: u8
//! flags:  u8   bit 0: has dest     bit 1: has src1    bit 2: has src2
//!              bit 3: has mem      bit 4: has branch  bit 5: branch taken
//! pc:     u64  little endian
//! [dest]  u8   bit 7: class (0 = int, 1 = fp), bits 0..5: index
//! [src1]  u8
//! [src2]  u8
//! [mem]   u64 addr + u8 size
//! [branch target] u64
//! ```
//!
//! The encoding favours simplicity and robustness over maximum density: a
//! typical record is 11–20 bytes, small enough that multi-million-instruction
//! trace files stay comfortably small.

use bytes::{Buf, BufMut};

use crate::{ArchReg, BranchInfo, Instruction, InstructionError, OpClass, RegClass};

const FLAG_DEST: u8 = 1 << 0;
const FLAG_SRC1: u8 = 1 << 1;
const FLAG_SRC2: u8 = 1 << 2;
const FLAG_MEM: u8 = 1 << 3;
const FLAG_BRANCH: u8 = 1 << 4;
const FLAG_TAKEN: u8 = 1 << 5;

const REG_CLASS_BIT: u8 = 1 << 7;
const REG_INDEX_MASK: u8 = 0x3f;

fn encode_reg(reg: ArchReg) -> u8 {
    let class_bit = match reg.class() {
        RegClass::Int => 0,
        RegClass::Fp => REG_CLASS_BIT,
    };
    class_bit | (reg.index() & REG_INDEX_MASK)
}

fn decode_reg(byte: u8) -> Result<ArchReg, InstructionError> {
    let index = byte & REG_INDEX_MASK;
    if index >= 32 {
        return Err(InstructionError::InvalidRegisterByte(byte));
    }
    if byte & REG_CLASS_BIT != 0 {
        Ok(ArchReg::fp(index))
    } else {
        Ok(ArchReg::int(index))
    }
}

/// Appends the binary encoding of `inst` to `buf`.
///
/// # Example
///
/// ```
/// use bytes::BytesMut;
/// use dsmt_isa::{encode_instruction, decode_instruction, Instruction, OpClass, ArchReg};
///
/// let inst = Instruction::new(0x10, OpClass::IntAlu)
///     .with_dest(ArchReg::int(1))
///     .with_src1(ArchReg::int(2));
/// let mut buf = BytesMut::new();
/// encode_instruction(&inst, &mut buf);
/// let mut bytes = buf.freeze();
/// assert_eq!(decode_instruction(&mut bytes).unwrap(), inst);
/// ```
pub fn encode_instruction<B: BufMut>(inst: &Instruction, buf: &mut B) {
    let mut flags = 0u8;
    if inst.dest.is_some() {
        flags |= FLAG_DEST;
    }
    if inst.src1.is_some() {
        flags |= FLAG_SRC1;
    }
    if inst.src2.is_some() {
        flags |= FLAG_SRC2;
    }
    if inst.mem.is_some() {
        flags |= FLAG_MEM;
    }
    if let Some(b) = inst.branch {
        flags |= FLAG_BRANCH;
        if b.taken {
            flags |= FLAG_TAKEN;
        }
    }
    buf.put_u8(inst.op.tag());
    buf.put_u8(flags);
    buf.put_u64_le(inst.pc);
    if let Some(d) = inst.dest {
        buf.put_u8(encode_reg(d));
    }
    if let Some(s) = inst.src1 {
        buf.put_u8(encode_reg(s));
    }
    if let Some(s) = inst.src2 {
        buf.put_u8(encode_reg(s));
    }
    if let Some(m) = inst.mem {
        buf.put_u64_le(m.addr);
        buf.put_u8(m.size);
    }
    if let Some(b) = inst.branch {
        buf.put_u64_le(b.target);
    }
}

/// Decodes one instruction from the front of `buf`, consuming its bytes.
///
/// # Errors
///
/// Returns [`InstructionError::TruncatedEncoding`] if the buffer ends in the
/// middle of a record, [`InstructionError::UnknownOpTag`] for an
/// unrecognised operation tag and [`InstructionError::InvalidRegisterByte`]
/// for a malformed register byte.
pub fn decode_instruction<B: Buf>(buf: &mut B) -> Result<Instruction, InstructionError> {
    if buf.remaining() < 10 {
        return Err(InstructionError::TruncatedEncoding);
    }
    let tag = buf.get_u8();
    let op = OpClass::from_tag(tag).ok_or(InstructionError::UnknownOpTag(tag))?;
    let flags = buf.get_u8();
    let pc = buf.get_u64_le();
    let mut inst = Instruction::new(pc, op);

    let mut need = 0usize;
    if flags & FLAG_DEST != 0 {
        need += 1;
    }
    if flags & FLAG_SRC1 != 0 {
        need += 1;
    }
    if flags & FLAG_SRC2 != 0 {
        need += 1;
    }
    if flags & FLAG_MEM != 0 {
        need += 9;
    }
    if flags & FLAG_BRANCH != 0 {
        need += 8;
    }
    if buf.remaining() < need {
        return Err(InstructionError::TruncatedEncoding);
    }

    if flags & FLAG_DEST != 0 {
        inst.dest = Some(decode_reg(buf.get_u8())?);
    }
    if flags & FLAG_SRC1 != 0 {
        inst.src1 = Some(decode_reg(buf.get_u8())?);
    }
    if flags & FLAG_SRC2 != 0 {
        inst.src2 = Some(decode_reg(buf.get_u8())?);
    }
    if flags & FLAG_MEM != 0 {
        let addr = buf.get_u64_le();
        let size = buf.get_u8();
        inst = inst.with_mem(addr, size);
    }
    if flags & FLAG_BRANCH != 0 {
        let target = buf.get_u64_le();
        inst = inst.with_branch(BranchInfo::new(flags & FLAG_TAKEN != 0, target));
    }
    Ok(inst)
}

/// Encodes a whole slice of instructions into a fresh byte vector.
#[must_use]
pub fn encode_stream(insts: &[Instruction]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(insts.len() * 16);
    for inst in insts {
        encode_instruction(inst, &mut buf);
    }
    buf
}

/// Decodes every instruction from a byte slice.
///
/// # Errors
///
/// Propagates the first decoding error encountered.
pub fn decode_stream(mut bytes: &[u8]) -> Result<Vec<Instruction>, InstructionError> {
    let mut out = Vec::new();
    while !bytes.is_empty() {
        out.push(decode_instruction(&mut bytes)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemRef;

    fn sample_instructions() -> Vec<Instruction> {
        vec![
            Instruction::new(0x1000, OpClass::IntAlu)
                .with_dest(ArchReg::int(1))
                .with_src1(ArchReg::int(2))
                .with_src2(ArchReg::int(3)),
            Instruction::new(0x1004, OpClass::LoadFp)
                .with_dest(ArchReg::fp(4))
                .with_src1(ArchReg::int(9))
                .with_mem(0x000d_eadb_eef0, 8),
            Instruction::new(0x1008, OpClass::StoreFp)
                .with_src1(ArchReg::fp(4))
                .with_src2(ArchReg::int(9))
                .with_mem(0x1_0000_0000, 8),
            Instruction::new(0x100c, OpClass::CondBranch)
                .with_src1(ArchReg::int(1))
                .with_branch(BranchInfo::taken(0x1000)),
            Instruction::new(0x1010, OpClass::CondBranch)
                .with_src1(ArchReg::int(1))
                .with_branch(BranchInfo::not_taken()),
            Instruction::new(0x1014, OpClass::Nop),
        ]
    }

    #[test]
    fn roundtrip_single() {
        for inst in sample_instructions() {
            let mut buf = Vec::new();
            encode_instruction(&inst, &mut buf);
            let decoded = decode_instruction(&mut buf.as_slice()).unwrap();
            assert_eq!(decoded, inst);
        }
    }

    #[test]
    fn roundtrip_stream() {
        let insts = sample_instructions();
        let bytes = encode_stream(&insts);
        let decoded = decode_stream(&bytes).unwrap();
        assert_eq!(decoded, insts);
    }

    #[test]
    fn truncated_stream_errors() {
        let insts = sample_instructions();
        let bytes = encode_stream(&insts);
        let err = decode_stream(&bytes[..bytes.len() - 1]).unwrap_err();
        assert_eq!(err, InstructionError::TruncatedEncoding);
        assert_eq!(
            decode_stream(&bytes[..5]).unwrap_err(),
            InstructionError::TruncatedEncoding
        );
    }

    #[test]
    fn unknown_tag_errors() {
        let mut bytes = encode_stream(&sample_instructions()[..1]);
        bytes[0] = 0xfe;
        assert_eq!(
            decode_stream(&bytes).unwrap_err(),
            InstructionError::UnknownOpTag(0xfe)
        );
    }

    #[test]
    fn invalid_register_byte_errors() {
        // Encode an IntAlu with a dest, then corrupt the register byte to
        // index 33 (> 31) which cannot be produced by encode_reg.
        let inst = Instruction::new(0, OpClass::IntAlu).with_dest(ArchReg::int(1));
        let mut bytes = encode_stream(&[inst]);
        let reg_byte_pos = bytes.len() - 1;
        bytes[reg_byte_pos] = 33;
        match decode_stream(&bytes).unwrap_err() {
            InstructionError::InvalidRegisterByte(b) => assert_eq!(b, 33),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn mem_ref_precision_preserved() {
        let inst = Instruction::new(u64::MAX - 8, OpClass::LoadInt)
            .with_dest(ArchReg::int(30))
            .with_mem(u64::MAX - 64, 4);
        let bytes = encode_stream(&[inst]);
        let decoded = decode_stream(&bytes).unwrap();
        assert_eq!(decoded[0].mem, Some(MemRef::new(u64::MAX - 64, 4)));
        assert_eq!(decoded[0].pc, u64::MAX - 8);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_reg() -> impl Strategy<Value = ArchReg> {
        (0u8..32, prop::bool::ANY).prop_map(|(idx, fp)| {
            if fp {
                ArchReg::fp(idx)
            } else {
                ArchReg::int(idx)
            }
        })
    }

    fn arb_instruction() -> impl Strategy<Value = Instruction> {
        (
            prop::num::u64::ANY,
            0u8..13,
            prop::option::of(arb_reg()),
            prop::option::of(arb_reg()),
            prop::option::of(arb_reg()),
            prop::num::u64::ANY,
            1u8..=16,
            prop::bool::ANY,
            prop::num::u64::ANY,
        )
            .prop_map(|(pc, tag, dest, src1, src2, addr, size, taken, target)| {
                let op = OpClass::from_tag(tag).unwrap();
                let mut inst = Instruction::new(pc, op);
                inst.dest = dest;
                inst.src1 = src1;
                inst.src2 = src2;
                if op.is_mem() {
                    inst = inst.with_mem(addr, size);
                }
                if op.is_control() {
                    inst = inst.with_branch(BranchInfo::new(taken, target));
                }
                inst
            })
    }

    proptest! {
        #[test]
        fn encode_decode_roundtrip(insts in prop::collection::vec(arb_instruction(), 0..64)) {
            let bytes = encode_stream(&insts);
            let decoded = decode_stream(&bytes).unwrap();
            prop_assert_eq!(decoded, insts);
        }

        #[test]
        fn decoding_arbitrary_bytes_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
            // May error, must not panic.
            let _ = decode_stream(&bytes);
        }

        #[test]
        fn encoded_records_stay_within_documented_bounds(insts in prop::collection::vec(arb_instruction(), 1..64)) {
            // The module docs promise 10..=27 bytes per record (2-byte
            // header + 8-byte pc + up to 3 register bytes + 9-byte memory
            // reference + 8-byte branch target).
            let bytes = encode_stream(&insts);
            prop_assert!(bytes.len() >= insts.len() * 10);
            prop_assert!(bytes.len() <= insts.len() * 27);
            // And decoding consumes every byte exactly.
            let decoded = decode_stream(&bytes).unwrap();
            prop_assert_eq!(decoded.len(), insts.len());
        }
    }
}
