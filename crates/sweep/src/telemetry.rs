//! Sweep-side telemetry glue: the live `--progress` line and the
//! serde adapters that embed a [`dsmt_obs::Snapshot`] in report JSON.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dsmt_obs::{HistogramSnapshot, Snapshot};
use serde::{DeError, Deserialize, Serialize, Value};

/// A live `N/M cells (pct%) rate cells/s ETA` line, redrawn on stderr a few
/// times per second by a background ticker thread while sweep workers bump
/// the shared counter. Rendering goes to stderr so piped/captured stdout
/// (CSV, JSON) stays clean.
#[derive(Debug)]
pub struct ProgressLine {
    done: Arc<AtomicUsize>,
    stop: Arc<AtomicBool>,
    total: usize,
    started: Instant,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl ProgressLine {
    /// Starts the ticker for a sweep of `total` cells.
    #[must_use]
    pub fn start(total: usize) -> Self {
        let done = Arc::new(AtomicUsize::new(0));
        let stop = Arc::new(AtomicBool::new(false));
        let started = Instant::now();
        let handle = {
            let done = Arc::clone(&done);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    render(done.load(Ordering::Relaxed), total, started.elapsed());
                    // Short sleeps keep finish() latency low without
                    // redrawing more often than the 250ms cadence.
                    for _ in 0..10 {
                        if stop.load(Ordering::Relaxed) {
                            return;
                        }
                        std::thread::sleep(Duration::from_millis(25));
                    }
                }
            })
        };
        ProgressLine {
            done,
            stop,
            total,
            started,
            handle: Some(handle),
        }
    }

    /// The shared completion counter; sweep workers bump it once per cell.
    #[must_use]
    pub fn counter(&self) -> Arc<AtomicUsize> {
        Arc::clone(&self.done)
    }

    /// Stops the ticker, draws the final state and terminates the line.
    pub fn finish(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
        render(
            self.done.load(Ordering::Relaxed),
            self.total,
            self.started.elapsed(),
        );
        eprintln!();
    }
}

impl Drop for ProgressLine {
    fn drop(&mut self) {
        // finish() already joined; this covers early-drop (panic) paths.
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

fn render(done: usize, total: usize, elapsed: Duration) {
    let secs = elapsed.as_secs_f64().max(1e-9);
    let rate = done as f64 / secs;
    let pct = if total == 0 {
        100.0
    } else {
        done as f64 * 100.0 / total as f64
    };
    let eta = if done == 0 || done >= total {
        "0s".to_string()
    } else {
        format!("{:.0}s", (total - done) as f64 / rate)
    };
    eprint!("\r  sweep: {done}/{total} cells ({pct:.0}%)  {rate:.1} cells/s  ETA {eta}   ");
}

/// Encodes a metrics [`Snapshot`] as a store/report [`Value`]. Histograms
/// become `{name, count, sum, buckets: [[index, count], …]}` objects so the
/// JSON stays self-describing.
#[must_use]
pub fn snapshot_to_value(snap: &Snapshot) -> Value {
    Value::Object(vec![
        ("counters".to_string(), snap.counters.to_value()),
        ("gauges".to_string(), snap.gauges.to_value()),
        (
            "histograms".to_string(),
            Value::Array(
                snap.histograms
                    .iter()
                    .map(|(name, h)| {
                        Value::Object(vec![
                            ("name".to_string(), name.to_value()),
                            ("count".to_string(), h.count.to_value()),
                            ("sum".to_string(), h.sum.to_value()),
                            ("buckets".to_string(), h.buckets.to_value()),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Decodes a [`Snapshot`] produced by [`snapshot_to_value`].
///
/// # Errors
///
/// A [`DeError`] when the value shape does not match.
pub fn snapshot_from_value(v: &Value) -> Result<Snapshot, DeError> {
    let histograms = match v.field("histograms")? {
        Value::Array(items) => items
            .iter()
            .map(|item| {
                Ok((
                    String::from_value(item.field("name")?)?,
                    HistogramSnapshot {
                        count: u64::from_value(item.field("count")?)?,
                        sum: u64::from_value(item.field("sum")?)?,
                        buckets: Vec::from_value(item.field("buckets")?)?,
                    },
                ))
            })
            .collect::<Result<_, DeError>>()?,
        other => return Err(DeError::msg(format!("expected array, got {other:?}"))),
    };
    Ok(Snapshot {
        counters: Vec::from_value(v.field("counters")?)?,
        gauges: Vec::from_value(v.field("gauges")?)?,
        histograms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_round_trips_through_value() {
        let snap = Snapshot {
            counters: vec![("a.b".to_string(), 7)],
            gauges: vec![("g".to_string(), -2)],
            histograms: vec![(
                "h".to_string(),
                HistogramSnapshot {
                    count: 3,
                    sum: 1501,
                    buckets: vec![(0, 1), (11, 2)],
                },
            )],
        };
        let back = snapshot_from_value(&snapshot_to_value(&snap)).expect("round trip");
        assert_eq!(back, snap);

        let empty = Snapshot::default();
        let back = snapshot_from_value(&snapshot_to_value(&empty)).expect("empty round trip");
        assert!(back.is_empty());
    }

    #[test]
    fn progress_line_counts_to_completion() {
        let progress = ProgressLine::start(4);
        let counter = progress.counter();
        for _ in 0..4 {
            counter.fetch_add(1, Ordering::Relaxed);
        }
        progress.finish();
    }
}
