//! Structured sweep results: one record per cell, one report per grid.

use dsmt_core::SimResults;
use serde::{Deserialize, Serialize};

use crate::Scenario;

/// Wall-clock throughput telemetry for one simulated (or replayed) cell.
///
/// Unlike `results`, these numbers depend on the host machine, the worker
/// count and the cache state; they are exported for performance tracking
/// but deliberately excluded from record equality, which covers only the
/// deterministic simulation outcome.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CellPerf {
    /// Wall-clock seconds spent producing this cell's results (simulation,
    /// or cache replay on a hit).
    pub wall_secs: f64,
    /// Graduated instructions per wall-clock second.
    pub instructions_per_sec: f64,
    /// Simulated cycles per wall-clock second.
    pub sim_cycles_per_sec: f64,
}

impl CellPerf {
    /// Derives the throughput rates for `results` produced in `wall_secs`.
    #[must_use]
    pub fn new(results: &SimResults, wall_secs: f64) -> Self {
        let denom = wall_secs.max(1e-12);
        CellPerf {
            wall_secs,
            instructions_per_sec: results.instructions as f64 / denom,
            sim_cycles_per_sec: results.cycles as f64 / denom,
        }
    }
}

/// The result of one sweep cell, with full provenance: the record alone is
/// enough to reproduce the simulation (`scenario`) and to place it in the
/// grid (`labels`).
///
/// Records deliberately exclude anything scheduling-dependent from their
/// *identity*: both equality and the canonical JSON form ignore `perf`
/// (wall time is machine- and scheduling-dependent), so a grid's records —
/// in memory and on disk — stay bit-identical across worker counts and
/// across cached/uncached runs. Per-cell throughput is still exported via
/// the CSV telemetry columns (see `export::CSV_METRICS`) and the in-memory
/// field.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// Cell index in grid order.
    pub cell: usize,
    /// Grid name.
    pub grid: String,
    /// Workload label.
    pub workload: String,
    /// (axis name, value label) pairs in axis order.
    pub labels: Vec<(String, String)>,
    /// Cache key of the scenario (hex).
    pub key: String,
    /// The fully specified simulation that produced `results`.
    pub scenario: Scenario,
    /// The simulation results.
    pub results: SimResults,
    /// Host throughput while producing this cell (not part of equality).
    pub perf: CellPerf,
}

impl PartialEq for RunRecord {
    fn eq(&self, other: &Self) -> bool {
        // `perf` intentionally omitted: see the struct docs.
        self.cell == other.cell
            && self.grid == other.grid
            && self.workload == other.workload
            && self.labels == other.labels
            && self.key == other.key
            && self.scenario == other.scenario
            && self.results == other.results
    }
}

impl RunRecord {
    /// The value label for a named axis, if the grid swept it.
    #[must_use]
    pub fn label(&self, axis: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(name, _)| name == axis)
            .map(|(_, v)| v.as_str())
    }
}

// Hand-written (not derived) so the canonical JSON form excludes `perf`:
// exported record files must stay byte-identical across worker counts,
// cache state and host machines.
impl Serialize for RunRecord {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("cell".to_string(), self.cell.to_value()),
            ("grid".to_string(), self.grid.to_value()),
            ("workload".to_string(), self.workload.to_value()),
            ("labels".to_string(), self.labels.to_value()),
            ("key".to_string(), self.key.to_value()),
            ("scenario".to_string(), self.scenario.to_value()),
            ("results".to_string(), self.results.to_value()),
        ])
    }
}

impl Deserialize for RunRecord {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        Ok(RunRecord {
            cell: Deserialize::from_value(v.field("cell")?)?,
            grid: Deserialize::from_value(v.field("grid")?)?,
            workload: Deserialize::from_value(v.field("workload")?)?,
            labels: Deserialize::from_value(v.field("labels")?)?,
            key: Deserialize::from_value(v.field("key")?)?,
            scenario: Deserialize::from_value(v.field("scenario")?)?,
            results: Deserialize::from_value(v.field("results")?)?,
            // Telemetry is not persisted in the canonical form.
            perf: CellPerf {
                wall_secs: 0.0,
                instructions_per_sec: 0.0,
                sim_cycles_per_sec: 0.0,
            },
        })
    }
}

/// Everything a sweep produced: records in grid order plus cache telemetry.
///
/// The JSON form additionally carries the derived `instructions_per_sec`
/// and `sim_cycles_per_sec` aggregate rates (computed, not stored).
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Grid name.
    pub grid: String,
    /// One record per cell, in grid order.
    pub records: Vec<RunRecord>,
    /// Cells answered from the on-disk cache.
    pub cache_hits: usize,
    /// Cells that had to simulate.
    pub cache_misses: usize,
    /// Aggregate compute seconds for this report's cells: the sum of the
    /// per-cell wall times. Equals wall-clock time for a serial run and is
    /// additive across grids and merges (a shared engine wall clock would
    /// double-count when several grids share one pool). Not part of
    /// equality, like [`RunRecord::perf`].
    pub wall_secs: f64,
    /// A process-wide metrics snapshot taken when the sweep finished,
    /// attached only while tracing is enabled (`DSMT_LOG` at info level or
    /// below). Like `wall_secs` it is host telemetry, not simulation
    /// output: excluded from equality and from canonical record bytes, so
    /// merged `.dsr` files stay bit-identical whether or not it is set.
    pub metrics: Option<dsmt_obs::Snapshot>,
}

impl PartialEq for SweepReport {
    fn eq(&self, other: &Self) -> bool {
        // `wall_secs` and `metrics` intentionally omitted: see field docs.
        self.grid == other.grid
            && self.records == other.records
            && self.cache_hits == other.cache_hits
            && self.cache_misses == other.cache_misses
    }
}

impl SweepReport {
    /// Total graduated instructions per compute second across the report
    /// (total work over [`SweepReport::wall_secs`]) — a per-core
    /// throughput figure that is stable across worker counts.
    #[must_use]
    pub fn instructions_per_sec(&self) -> f64 {
        let insts: u64 = self.records.iter().map(|r| r.results.instructions).sum();
        insts as f64 / self.wall_secs.max(1e-12)
    }

    /// Total simulated cycles per compute second across the report.
    #[must_use]
    pub fn sim_cycles_per_sec(&self) -> f64 {
        let cycles: u64 = self.records.iter().map(|r| r.results.cycles).sum();
        cycles as f64 / self.wall_secs.max(1e-12)
    }

    /// Merges several reports (e.g. the two Figure-5 grids) into one,
    /// renumbering cells sequentially.
    ///
    /// # Panics
    ///
    /// Panics if `reports` is empty.
    #[must_use]
    pub fn merged(name: impl Into<String>, reports: Vec<SweepReport>) -> SweepReport {
        assert!(!reports.is_empty(), "nothing to merge");
        let mut out = SweepReport {
            grid: name.into(),
            records: Vec::new(),
            cache_hits: 0,
            cache_misses: 0,
            wall_secs: 0.0,
            metrics: None,
        };
        for report in reports {
            out.cache_hits += report.cache_hits;
            out.cache_misses += report.cache_misses;
            out.wall_secs += report.wall_secs;
            for mut record in report.records {
                record.cell = out.records.len();
                out.records.push(record);
            }
        }
        out
    }

    /// Total cells.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the report is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// `true` when every cell came from the cache.
    #[must_use]
    pub fn fully_cached(&self) -> bool {
        self.cache_misses == 0 && !self.records.is_empty()
    }

    /// The union of axis names across all records, in first-seen order.
    ///
    /// Within one grid every record has the same axes; merged reports may
    /// differ. Both the CSV exporter and table renderers derive their axis
    /// columns from this, so they always agree.
    #[must_use]
    pub fn axis_names(&self) -> Vec<String> {
        let mut axes: Vec<String> = Vec::new();
        for record in &self.records {
            for (name, _) in &record.labels {
                if !axes.iter().any(|a| a == name) {
                    axes.push(name.clone());
                }
            }
        }
        axes
    }
}

// Hand-written so the JSON form can include the derived aggregate rates
// alongside the stored fields.
impl Serialize for SweepReport {
    fn to_value(&self) -> serde::Value {
        let mut fields = vec![
            ("grid".to_string(), self.grid.to_value()),
            ("records".to_string(), self.records.to_value()),
            ("cache_hits".to_string(), self.cache_hits.to_value()),
            ("cache_misses".to_string(), self.cache_misses.to_value()),
            ("wall_secs".to_string(), self.wall_secs.to_value()),
            (
                "instructions_per_sec".to_string(),
                self.instructions_per_sec().to_value(),
            ),
            (
                "sim_cycles_per_sec".to_string(),
                self.sim_cycles_per_sec().to_value(),
            ),
        ];
        if let Some(snap) = &self.metrics {
            fields.push((
                "metrics".to_string(),
                crate::telemetry::snapshot_to_value(snap),
            ));
        }
        serde::Value::Object(fields)
    }
}

impl Deserialize for SweepReport {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        Ok(SweepReport {
            grid: Deserialize::from_value(v.field("grid")?)?,
            records: Deserialize::from_value(v.field("records")?)?,
            cache_hits: Deserialize::from_value(v.field("cache_hits")?)?,
            cache_misses: Deserialize::from_value(v.field("cache_misses")?)?,
            // Absent in pre-telemetry report files; the derived rate fields
            // are recomputed, never read back.
            wall_secs: v
                .field("wall_secs")
                .ok()
                .map_or(Ok(0.0), Deserialize::from_value)?,
            // Attached only by tracing-enabled sweeps; absence is normal.
            metrics: v
                .field("metrics")
                .ok()
                .map(crate::telemetry::snapshot_from_value)
                .transpose()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SweepEngine, SweepGrid, WorkloadSpec};
    use dsmt_core::SimConfig;

    fn small_report() -> SweepReport {
        let grid = SweepGrid::new("rec", SimConfig::paper_multithreaded(1))
            .with_workload(WorkloadSpec::benchmark("swim"))
            .with_axis(crate::Axis::l2_latencies(&[1, 16]))
            .with_budget(4_000);
        SweepEngine::new(2).without_cache().run(&grid)
    }

    #[test]
    fn records_carry_provenance_and_labels() {
        let report = small_report();
        assert_eq!(report.len(), 2);
        assert!(!report.is_empty());
        let r = &report.records[1];
        assert_eq!(r.label("l2_latency"), Some("16"));
        assert_eq!(r.label("nope"), None);
        assert_eq!(r.scenario.config.mem.l2_latency, 16);
        assert_eq!(r.key, r.scenario.cache_key_hex());
        // No cache attached: every cell simulated.
        assert_eq!(report.cache_hits, 0);
        assert_eq!(report.cache_misses, 2);
        assert!(!report.fully_cached());
    }

    #[test]
    fn merged_renumbers_cells() {
        let a = small_report();
        let b = small_report();
        let m = SweepReport::merged("both", vec![a, b]);
        assert_eq!(m.len(), 4);
        assert_eq!(
            m.records.iter().map(|r| r.cell).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
        assert_eq!(m.cache_misses, 4);
        assert_eq!(m.grid, "both");
    }

    #[test]
    fn report_json_round_trips() {
        let report = small_report();
        let text = serde::to_string(&report);
        let back: SweepReport = serde::from_str(&text).expect("report round-trips");
        assert_eq!(back, report);
    }

    #[test]
    fn per_cell_perf_is_populated_but_not_identity() {
        let report = small_report();
        for r in &report.records {
            assert!(r.perf.wall_secs > 0.0, "cell {} has no wall time", r.cell);
            assert!(r.perf.instructions_per_sec > 0.0);
            assert!(r.perf.sim_cycles_per_sec > r.perf.instructions_per_sec * 0.05);
        }
        assert!(report.wall_secs > 0.0);
        assert!(report.instructions_per_sec() > 0.0);
        assert!(report.sim_cycles_per_sec() > 0.0);
        // Report compute-seconds are the sum of per-cell wall times, so
        // they stay additive under merging (no double-counted engine wall).
        let cell_sum: f64 = report.records.iter().map(|r| r.perf.wall_secs).sum();
        assert!((report.wall_secs - cell_sum).abs() < 1e-9);
        let merged = SweepReport::merged("m", vec![report.clone(), report.clone()]);
        assert!((merged.wall_secs - 2.0 * report.wall_secs).abs() < 1e-9);
        // Identity (equality + canonical JSON) excludes the telemetry:
        // records with different perf still compare and serialize equal.
        let mut a = report.records[0].clone();
        let b = a.clone();
        a.perf.wall_secs *= 1000.0;
        a.perf.instructions_per_sec = 0.0;
        assert_eq!(a, b);
        assert_eq!(serde::to_string(&a), serde::to_string(&b));
        // The JSON report carries the aggregate rates for perf tracking.
        let text = serde::to_string(&report);
        assert!(text.contains("\"instructions_per_sec\""));
        assert!(text.contains("\"sim_cycles_per_sec\""));
        assert!(text.contains("\"wall_secs\""));
    }

    #[test]
    fn metrics_snapshot_is_carried_but_not_identity() {
        let plain = small_report();
        let mut with_metrics = plain.clone();
        with_metrics.metrics = Some(dsmt_obs::Snapshot {
            counters: vec![("sweep.cells_simulated".to_string(), 2)],
            gauges: vec![],
            histograms: vec![],
        });
        // A host-telemetry snapshot never separates otherwise-equal reports.
        assert_eq!(with_metrics, plain);
        // It round-trips through JSON when present, and its absence stays
        // absent (old report files keep deserializing).
        let text = serde::to_string(&with_metrics);
        assert!(text.contains("\"metrics\""));
        let back: SweepReport = serde::from_str(&text).expect("metrics round-trips");
        assert_eq!(back.metrics, with_metrics.metrics);
        let plain_text = serde::to_string(&plain);
        assert!(!plain_text.contains("\"metrics\""));
        let back: SweepReport = serde::from_str(&plain_text).expect("no-metrics round-trips");
        assert_eq!(back.metrics, None);
    }
}
