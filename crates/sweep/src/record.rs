//! Structured sweep results: one record per cell, one report per grid.

use dsmt_core::SimResults;
use serde::{Deserialize, Serialize};

use crate::Scenario;

/// The result of one sweep cell, with full provenance: the record alone is
/// enough to reproduce the simulation (`scenario`) and to place it in the
/// grid (`labels`).
///
/// Records deliberately exclude anything scheduling-dependent (wall time,
/// worker id, cache hit/miss), so a grid's records are bit-identical across
/// worker counts and across cached/uncached runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunRecord {
    /// Cell index in grid order.
    pub cell: usize,
    /// Grid name.
    pub grid: String,
    /// Workload label.
    pub workload: String,
    /// (axis name, value label) pairs in axis order.
    pub labels: Vec<(String, String)>,
    /// Cache key of the scenario (hex).
    pub key: String,
    /// The fully specified simulation that produced `results`.
    pub scenario: Scenario,
    /// The simulation results.
    pub results: SimResults,
}

impl RunRecord {
    /// The value label for a named axis, if the grid swept it.
    #[must_use]
    pub fn label(&self, axis: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(name, _)| name == axis)
            .map(|(_, v)| v.as_str())
    }
}

/// Everything a sweep produced: records in grid order plus cache telemetry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepReport {
    /// Grid name.
    pub grid: String,
    /// One record per cell, in grid order.
    pub records: Vec<RunRecord>,
    /// Cells answered from the on-disk cache.
    pub cache_hits: usize,
    /// Cells that had to simulate.
    pub cache_misses: usize,
}

impl SweepReport {
    /// Merges several reports (e.g. the two Figure-5 grids) into one,
    /// renumbering cells sequentially.
    ///
    /// # Panics
    ///
    /// Panics if `reports` is empty.
    #[must_use]
    pub fn merged(name: impl Into<String>, reports: Vec<SweepReport>) -> SweepReport {
        assert!(!reports.is_empty(), "nothing to merge");
        let mut out = SweepReport {
            grid: name.into(),
            records: Vec::new(),
            cache_hits: 0,
            cache_misses: 0,
        };
        for report in reports {
            out.cache_hits += report.cache_hits;
            out.cache_misses += report.cache_misses;
            for mut record in report.records {
                record.cell = out.records.len();
                out.records.push(record);
            }
        }
        out
    }

    /// Total cells.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the report is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// `true` when every cell came from the cache.
    #[must_use]
    pub fn fully_cached(&self) -> bool {
        self.cache_misses == 0 && !self.records.is_empty()
    }

    /// The union of axis names across all records, in first-seen order.
    ///
    /// Within one grid every record has the same axes; merged reports may
    /// differ. Both the CSV exporter and table renderers derive their axis
    /// columns from this, so they always agree.
    #[must_use]
    pub fn axis_names(&self) -> Vec<String> {
        let mut axes: Vec<String> = Vec::new();
        for record in &self.records {
            for (name, _) in &record.labels {
                if !axes.iter().any(|a| a == name) {
                    axes.push(name.clone());
                }
            }
        }
        axes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SweepEngine, SweepGrid, WorkloadSpec};
    use dsmt_core::SimConfig;

    fn small_report() -> SweepReport {
        let grid = SweepGrid::new("rec", SimConfig::paper_multithreaded(1))
            .with_workload(WorkloadSpec::benchmark("swim"))
            .with_axis(crate::Axis::l2_latencies(&[1, 16]))
            .with_budget(4_000);
        SweepEngine::new(2).without_cache().run(&grid)
    }

    #[test]
    fn records_carry_provenance_and_labels() {
        let report = small_report();
        assert_eq!(report.len(), 2);
        assert!(!report.is_empty());
        let r = &report.records[1];
        assert_eq!(r.label("l2_latency"), Some("16"));
        assert_eq!(r.label("nope"), None);
        assert_eq!(r.scenario.config.mem.l2_latency, 16);
        assert_eq!(r.key, r.scenario.cache_key_hex());
        // No cache attached: every cell simulated.
        assert_eq!(report.cache_hits, 0);
        assert_eq!(report.cache_misses, 2);
        assert!(!report.fully_cached());
    }

    #[test]
    fn merged_renumbers_cells() {
        let a = small_report();
        let b = small_report();
        let m = SweepReport::merged("both", vec![a, b]);
        assert_eq!(m.len(), 4);
        assert_eq!(
            m.records.iter().map(|r| r.cell).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
        assert_eq!(m.cache_misses, 4);
        assert_eq!(m.grid, "both");
    }

    #[test]
    fn report_json_round_trips() {
        let report = small_report();
        let text = serde::to_string(&report);
        let back: SweepReport = serde::from_str(&text).expect("report round-trips");
        assert_eq!(back, report);
    }
}
