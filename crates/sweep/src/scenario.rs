//! One simulation cell: a configuration, a workload, a seed and a budget.

use dsmt_core::{Processor, SimConfig, SimResults};
use dsmt_trace::{
    spec_fp95_profile, BenchmarkProfile, Program, ProgramWorkload, SyntheticTrace, ThreadWorkload,
    TraceSource,
};
use serde::{Deserialize, Serialize};

use crate::{fnv1a64, CACHE_SCHEMA_VERSION};

/// What the simulated threads execute.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorkloadSpec {
    /// The paper's Section 3 multiprogrammed workload: every thread cycles
    /// through all ten SPEC FP95 profiles in a thread-specific order,
    /// switching program every `insts_per_program` instructions.
    SpecMix {
        /// Instructions per program segment.
        insts_per_program: u64,
    },
    /// A single named SPEC FP95 profile on every thread (Section 2 uses this
    /// with one thread).
    Benchmark {
        /// Profile name, e.g. `"tomcatv"`.
        name: String,
    },
    /// A multiprogram mix restricted to the named profiles.
    Mix {
        /// Profile names in rotation order.
        benchmarks: Vec<String>,
        /// Instructions per program segment.
        insts_per_program: u64,
    },
    /// A fully custom profile (for scenarios beyond the paper).
    Profile {
        /// The profile to synthesise.
        profile: BenchmarkProfile,
    },
    /// Assembled programs (`dsmt-asm`): thread `t` runs program `t mod n`,
    /// pinned for the whole simulation — the *heterogeneous* counterpart of
    /// the rotating mixes above, and the workload that separates the fetch
    /// policies.
    Programs {
        /// `(name, source)` pairs, assembled when the processor is built.
        programs: Vec<AsmSource>,
    },
}

/// The source text of one assembled program, carried inline so scenarios
/// stay self-contained (serializable, cache-keyable) without filesystem
/// references.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AsmSource {
    /// Program name, used in labels and assembler diagnostics.
    pub name: String,
    /// Assembly source text (the `dsmt-asm` grammar).
    pub source: String,
}

impl WorkloadSpec {
    /// Shorthand for [`WorkloadSpec::SpecMix`].
    #[must_use]
    pub fn spec_mix(insts_per_program: u64) -> Self {
        WorkloadSpec::SpecMix { insts_per_program }
    }

    /// Shorthand for [`WorkloadSpec::Benchmark`].
    #[must_use]
    pub fn benchmark(name: impl Into<String>) -> Self {
        WorkloadSpec::Benchmark { name: name.into() }
    }

    /// Shorthand for [`WorkloadSpec::Programs`] from `(name, source)` pairs
    /// (e.g. entries of [`dsmt_asm::corpus::CORPUS`]).
    #[must_use]
    pub fn programs(programs: &[(&str, &str)]) -> Self {
        WorkloadSpec::Programs {
            programs: programs
                .iter()
                .map(|&(name, source)| AsmSource {
                    name: name.into(),
                    source: source.into(),
                })
                .collect(),
        }
    }

    /// A short human-readable label used in records and CSV columns.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            WorkloadSpec::SpecMix { .. } => "spec-fp95-mix".to_string(),
            WorkloadSpec::Benchmark { name } => name.clone(),
            WorkloadSpec::Mix { benchmarks, .. } => format!("mix:{}", benchmarks.join("+")),
            WorkloadSpec::Profile { profile } => format!("profile:{}", profile.name),
            WorkloadSpec::Programs { programs } => {
                let names: Vec<&str> = programs.iter().map(|p| p.name.as_str()).collect();
                format!("asm:{}", names.join("+"))
            }
        }
    }

    /// Resolves the named profiles, failing fast on unknown benchmarks.
    fn profiles(names: &[String]) -> Vec<BenchmarkProfile> {
        names
            .iter()
            .map(|n| {
                spec_fp95_profile(n).unwrap_or_else(|| panic!("unknown SPEC FP95 benchmark `{n}`"))
            })
            .collect()
    }
}

/// A fully specified simulation: deterministic given its fields.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Processor and memory configuration.
    pub config: SimConfig,
    /// What the threads execute.
    pub workload: WorkloadSpec,
    /// Seed for workload synthesis.
    pub seed: u64,
    /// Instructions to simulate.
    pub budget: u64,
}

impl Scenario {
    /// The cache key: a stable hash over the canonical JSON encoding of
    /// (cache schema version, workspace version, config, workload, seed,
    /// budget).
    ///
    /// The workspace version is part of the key so that released simulator
    /// changes can never replay stale results; within one version, a change
    /// to simulator *behaviour* must be accompanied by a version (or
    /// [`crate::CACHE_SCHEMA_VERSION`]) bump — or use
    /// `DSMT_SWEEP_CACHE=off` while iterating on the simulator itself.
    #[must_use]
    pub fn cache_key(&self) -> u64 {
        let canonical = format!(
            "v{}+{}:{}",
            CACHE_SCHEMA_VERSION,
            env!("CARGO_PKG_VERSION"),
            serde::to_string(self)
        );
        fnv1a64(canonical.as_bytes())
    }

    /// The cache key as a fixed-width hex string (file-name friendly).
    #[must_use]
    pub fn cache_key_hex(&self) -> String {
        format!("{:016x}", self.cache_key())
    }

    /// Runs the simulation to completion.
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration or an unknown benchmark name —
    /// grid construction bugs, not runtime conditions.
    #[must_use]
    pub fn execute(&self) -> SimResults {
        let mut cpu = self.processor();
        let results = cpu.run(self.budget);
        results.record_metrics();
        cpu.perf().record_metrics();
        results
    }

    /// Builds (but does not run) the processor this scenario describes.
    /// [`execute`](Self::execute) is `processor().run(budget)` plus metric
    /// recording; the batched-cell drive loop constructs several at once
    /// and interleaves their run quanta instead.
    ///
    /// # Panics
    ///
    /// As for [`execute`](Self::execute).
    #[must_use]
    pub fn processor(&self) -> Processor {
        self.config
            .validate()
            .unwrap_or_else(|e| panic!("invalid scenario config: {e}"));
        match &self.workload {
            WorkloadSpec::SpecMix { insts_per_program } => {
                let workload =
                    ThreadWorkload::spec_fp95(self.seed).with_insts_per_program(*insts_per_program);
                Processor::with_workload(self.config.clone(), &workload)
            }
            WorkloadSpec::Mix {
                benchmarks,
                insts_per_program,
            } => {
                let workload = ThreadWorkload::new(
                    WorkloadSpec::profiles(benchmarks),
                    *insts_per_program,
                    self.seed,
                );
                Processor::with_workload(self.config.clone(), &workload)
            }
            WorkloadSpec::Benchmark { name } => {
                let profile = spec_fp95_profile(name)
                    .unwrap_or_else(|| panic!("unknown SPEC FP95 benchmark `{name}`"));
                self.profile_processor(&profile)
            }
            WorkloadSpec::Profile { profile } => self.profile_processor(profile),
            WorkloadSpec::Programs { programs } => {
                let assembled: Vec<Program> = programs
                    .iter()
                    .map(|p| {
                        dsmt_asm::assemble(&p.name, &p.source)
                            .unwrap_or_else(|e| panic!("workload program `{}`: {e}", p.name))
                    })
                    .collect();
                let workload = ProgramWorkload::new(assembled, self.seed);
                let traces: Vec<Box<dyn TraceSource>> = workload
                    .build(self.config.num_threads)
                    .into_iter()
                    .map(|t| Box::new(t) as Box<dyn TraceSource>)
                    .collect();
                Processor::new(self.config.clone(), traces)
            }
        }
    }

    fn profile_processor(&self, profile: &BenchmarkProfile) -> Processor {
        let traces: Vec<Box<dyn TraceSource>> = (0..self.config.num_threads)
            .map(|t| {
                Box::new(SyntheticTrace::with_offset(
                    profile,
                    self.seed,
                    t as u64 * 0x0400_2000,
                )) as Box<dyn TraceSource>
            })
            .collect();
        Processor::new(self.config.clone(), traces)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scenario() -> Scenario {
        Scenario {
            config: SimConfig::paper_multithreaded(2),
            workload: WorkloadSpec::spec_mix(3_000),
            seed: 42,
            budget: 12_000,
        }
    }

    #[test]
    fn cache_key_depends_on_every_field() {
        let base = tiny_scenario();
        let mut other = base.clone();
        other.seed += 1;
        assert_ne!(base.cache_key(), other.cache_key());
        let mut other = base.clone();
        other.budget += 1;
        assert_ne!(base.cache_key(), other.cache_key());
        let mut other = base.clone();
        other.config = base.config.clone().with_l2_latency(64);
        assert_ne!(base.cache_key(), other.cache_key());
        let mut other = base.clone();
        other.workload = WorkloadSpec::benchmark("tomcatv");
        assert_ne!(base.cache_key(), other.cache_key());
        // And it is stable across calls.
        assert_eq!(base.cache_key(), tiny_scenario().cache_key());
        assert_eq!(base.cache_key_hex().len(), 16);
    }

    #[test]
    fn execute_is_deterministic() {
        let s = tiny_scenario();
        let a = s.execute();
        let b = s.execute();
        assert_eq!(a, b);
        assert!(a.instructions >= s.budget);
        assert!(a.ipc() > 0.0);
    }

    #[test]
    fn single_benchmark_runs_on_every_thread() {
        let s = Scenario {
            config: SimConfig::paper_multithreaded(2),
            workload: WorkloadSpec::benchmark("mgrid"),
            seed: 7,
            budget: 8_000,
        };
        let r = s.execute();
        assert_eq!(r.per_thread_instructions.len(), 2);
        assert!(r.per_thread_instructions.iter().all(|&n| n > 0));
    }

    #[test]
    fn mix_workload_round_trips_through_json() {
        let s = Scenario {
            config: SimConfig::paper_single_thread_4wide(),
            workload: WorkloadSpec::Mix {
                benchmarks: vec!["swim".into(), "applu".into()],
                insts_per_program: 2_000,
            },
            seed: 3,
            budget: 6_000,
        };
        let text = serde::to_string(&s);
        let back: Scenario = serde::from_str(&text).expect("scenario round-trips");
        assert_eq!(back, s);
        assert_eq!(back.cache_key(), s.cache_key());
    }

    #[test]
    fn assembled_programs_pin_per_thread() {
        let s = Scenario {
            config: SimConfig::paper_multithreaded(2),
            workload: WorkloadSpec::programs(&[
                ("loop", "top: subi r1, r1, 1\n bnz r1, top\n halt"),
                ("fp", "top: fadd f1, f1, f2\n br top"),
            ]),
            seed: 11,
            budget: 6_000,
        };
        assert_eq!(s.workload.label(), "asm:loop+fp");
        let r = s.execute();
        assert_eq!(r.per_thread_instructions.len(), 2);
        assert!(r.per_thread_instructions.iter().all(|&n| n > 0));
        assert_eq!(s.execute(), r, "assembled workloads are deterministic");
        // The workload participates in the cache key and survives JSON.
        let text = serde::to_string(&s);
        let back: Scenario = serde::from_str(&text).expect("round-trips");
        assert_eq!(back.cache_key(), s.cache_key());
        let mut other = s.clone();
        other.workload = WorkloadSpec::programs(&[("loop", "top: br top")]);
        assert_ne!(other.cache_key(), s.cache_key());
    }

    #[test]
    #[should_panic(expected = "workload program `bad`")]
    fn assembler_errors_surface_at_processor_build() {
        let s = Scenario {
            config: SimConfig::paper_multithreaded(1),
            workload: WorkloadSpec::programs(&[("bad", "frob r1, r2")]),
            seed: 1,
            budget: 100,
        };
        let _ = s.processor();
    }

    #[test]
    fn labels_are_short_and_distinct() {
        assert_eq!(WorkloadSpec::spec_mix(1).label(), "spec-fp95-mix");
        assert_eq!(WorkloadSpec::benchmark("swim").label(), "swim");
        let mix = WorkloadSpec::Mix {
            benchmarks: vec!["a".into(), "b".into()],
            insts_per_program: 1,
        };
        assert_eq!(mix.label(), "mix:a+b");
    }
}
