//! The batched-cell drive loop: several independent simulations advanced a
//! quantum at a time from one worker thread.
//!
//! A cell spends most of its time inside `Processor::advance`, walking
//! per-thread window state that no longer fits in L1/L2 once the machine is
//! wide. Driving one cell to completion before touching the next streams
//! each working set through the cache in sequence; driving a *small batch*
//! round-robin keeps a few working sets resident and overlaps their misses
//! instead. The hot per-cell state lives in struct-of-arrays form
//! (`BatchDriver`'s parallel vectors) so the drive loop's own bookkeeping
//! stays contiguous.
//!
//! Determinism: each processor is private to its cell and the quantum
//! boundary only decides *when* a cell's cycles are stepped, never what they
//! compute — `Processor::run_quantum` splits stall-skip windows additively
//! (see `run_quantum_slicing_matches_monolithic_run` in dsmt-core), so
//! results are bit-identical to `Scenario::execute` for every batch size.

use std::time::Instant;

use dsmt_core::{Processor, SimResults};

use crate::Scenario;

/// Cycles a cell advances per turn. Large enough that the round-robin
/// switch (one `Vec` index per turn) is noise, small enough that a batch's
/// members genuinely interleave through the memory hierarchy.
const QUANTUM_CYCLES: u64 = 8_192;

/// Default cells per batch when `DSMT_SWEEP_BATCH` is unset: big enough to
/// overlap working sets, small enough that a batch never holds more than a
/// few processors' allocations live per worker.
pub const DEFAULT_BATCH: usize = 4;

/// Reads the batch size from `DSMT_SWEEP_BATCH` (min 1), defaulting to
/// [`DEFAULT_BATCH`]. `DSMT_SWEEP_BATCH=1` disables interleaving: every
/// cell runs to completion before the next starts, exactly the pre-batched
/// engine behaviour.
#[must_use]
pub fn batch_from_env() -> usize {
    parse_batch(std::env::var("DSMT_SWEEP_BATCH").ok().as_deref())
}

/// The pure half of [`batch_from_env`]: unset, unparsable or zero values
/// all fall back to [`DEFAULT_BATCH`].
fn parse_batch(raw: Option<&str>) -> usize {
    raw.and_then(|v| v.parse::<usize>().ok())
        .filter(|&b| b >= 1)
        .unwrap_or(DEFAULT_BATCH)
}

/// Hot per-cell state for one batch, struct-of-arrays: index `i` in every
/// vector belongs to scenario `i` of the slice being driven.
struct BatchDriver {
    procs: Vec<Processor>,
    /// Per-cell instruction budget (`Scenario::budget`).
    budgets: Vec<u64>,
    /// Per-cell runaway cycle cap (`Processor::run_cap`).
    caps: Vec<u64>,
    /// Per-cell accumulated wall seconds (construction + every quantum).
    wall: Vec<f64>,
    done: Vec<bool>,
    live: usize,
}

impl BatchDriver {
    fn new(scenarios: &[&Scenario]) -> Self {
        let n = scenarios.len();
        let mut driver = BatchDriver {
            procs: Vec::with_capacity(n),
            budgets: Vec::with_capacity(n),
            caps: Vec::with_capacity(n),
            wall: Vec::with_capacity(n),
            done: vec![false; n],
            live: n,
        };
        for scenario in scenarios {
            let started = Instant::now();
            let cpu = scenario.processor();
            driver.caps.push(cpu.run_cap(scenario.budget));
            driver.procs.push(cpu);
            driver.budgets.push(scenario.budget);
            driver.wall.push(started.elapsed().as_secs_f64());
        }
        driver
    }

    /// Round-robin passes over the live cells until every cell reports
    /// completion from [`Processor::run_quantum`].
    fn drive(&mut self) {
        while self.live > 0 {
            for i in 0..self.procs.len() {
                if self.done[i] {
                    continue;
                }
                let started = Instant::now();
                let finished =
                    self.procs[i].run_quantum(self.budgets[i], self.caps[i], QUANTUM_CYCLES);
                self.wall[i] += started.elapsed().as_secs_f64();
                if finished {
                    self.done[i] = true;
                    self.live -= 1;
                }
            }
        }
    }
}

/// Drives every scenario to completion, interleaving their execution, and
/// returns `(results, wall_secs)` per scenario in input order. Results are
/// bit-identical to calling [`Scenario::execute`] on each scenario alone,
/// including the per-run metric recording (`core.*` counters and
/// histograms); `wall_secs` is that cell's own construction plus stepping
/// time, excluding time spent driving its batch-mates.
#[must_use]
pub fn drive(scenarios: &[&Scenario]) -> Vec<(SimResults, f64)> {
    let mut driver = BatchDriver::new(scenarios);
    driver.drive();
    driver
        .procs
        .iter()
        .zip(&driver.wall)
        .map(|(cpu, &wall)| {
            let started = Instant::now();
            let results = cpu.results();
            results.record_metrics();
            cpu.perf().record_metrics();
            (results, wall + started.elapsed().as_secs_f64())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WorkloadSpec;
    use dsmt_core::SimConfig;

    fn scenario(l2: u64, seed: u64) -> Scenario {
        Scenario {
            config: SimConfig::paper_multithreaded(2).with_l2_latency(l2),
            workload: WorkloadSpec::spec_mix(2_000),
            seed,
            budget: 8_000,
        }
    }

    #[test]
    fn batched_drive_matches_solo_execution() {
        let cells = [scenario(16, 1), scenario(256, 2), scenario(64, 3)];
        let solo: Vec<_> = cells.iter().map(Scenario::execute).collect();
        let refs: Vec<&Scenario> = cells.iter().collect();
        let batched = drive(&refs);
        assert_eq!(batched.len(), 3);
        for ((got, wall), want) in batched.iter().zip(&solo) {
            assert_eq!(got, want);
            assert!(*wall > 0.0);
        }
    }

    #[test]
    fn empty_and_single_batches() {
        assert!(drive(&[]).is_empty());
        let one = scenario(64, 9);
        let batched = drive(&[&one]);
        assert_eq!(batched.len(), 1);
        assert_eq!(batched[0].0, one.execute());
    }

    #[test]
    fn batch_parsing_clamps_and_defaults() {
        assert_eq!(parse_batch(None), DEFAULT_BATCH);
        assert_eq!(parse_batch(Some("7")), 7);
        assert_eq!(parse_batch(Some("1")), 1);
        assert_eq!(parse_batch(Some("0")), DEFAULT_BATCH);
        assert_eq!(parse_batch(Some("nope")), DEFAULT_BATCH);
    }
}
