//! Declarative cartesian sweep spaces over `SimConfig` knobs and workloads.

use dsmt_core::{FetchPolicy, SimConfig};
use serde::{Deserialize, Serialize};

use crate::{splitmix64, Scenario, WorkloadSpec};

/// One value of one swept knob, applied to a base [`SimConfig`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Setting {
    /// L2 hit latency in cycles (the paper's main sweep variable).
    L2Latency(u64),
    /// Number of hardware contexts (keeps per-context MSHR replication in
    /// step, like [`SimConfig::with_threads`]).
    Threads(usize),
    /// Decoupling on/off (instruction queues enabled/restricted).
    Decoupled(bool),
    /// Queue/register scaling with L2 latency on/off.
    QueueScaling(bool),
    /// Per-thread EP instruction-queue depth.
    IqCapacity(usize),
    /// L1D MSHR count (lockup-freedom).
    Mshrs(usize),
    /// AP/EP functional-unit split.
    UnitSplit {
        /// Address-processor units.
        ap: usize,
        /// Execute-processor units.
        ep: usize,
    },
    /// L1D associativity.
    L1Associativity(usize),
    /// Threads allowed to fetch per cycle (the I-COUNT fetch gang size).
    FetchThreadsPerCycle(usize),
    /// Fetch thread-selection policy (I-COUNT vs plain round-robin).
    FetchPolicy(FetchPolicy),
    /// Overrides the cell's workload instead of a config knob, so a grid
    /// can sweep *what the threads run* (e.g. heterogeneous assembled-program
    /// mixes) crossed against the other axes.
    Workload(WorkloadSpec),
}

impl Setting {
    /// Applies the setting to a configuration. [`Setting::Workload`] leaves
    /// the configuration untouched — [`SweepGrid::cells`] applies it to the
    /// cell's workload instead.
    #[must_use]
    pub fn apply(&self, config: SimConfig) -> SimConfig {
        let mut config = config;
        match *self {
            Setting::L2Latency(lat) => config.mem.l2_latency = lat,
            Setting::Threads(n) => return config.with_threads(n),
            Setting::Decoupled(d) => config.decoupled = d,
            Setting::QueueScaling(s) => config.scale_queues_with_latency = s,
            Setting::IqCapacity(n) => config.iq_capacity = n,
            Setting::Mshrs(n) => config.mem.l1d.mshrs = n,
            Setting::UnitSplit { ap, ep } => {
                config.ap_units = ap;
                config.ep_units = ep;
            }
            Setting::L1Associativity(a) => config.mem.l1d.associativity = a,
            Setting::FetchThreadsPerCycle(n) => config.fetch_threads_per_cycle = n,
            Setting::FetchPolicy(p) => config.fetch_policy = p,
            Setting::Workload(_) => {}
        }
        config
    }

    /// The knob name (CSV column header for the axis).
    #[must_use]
    pub fn axis_name(&self) -> &'static str {
        match self {
            Setting::L2Latency(_) => "l2_latency",
            Setting::Threads(_) => "threads",
            Setting::Decoupled(_) => "decoupled",
            Setting::QueueScaling(_) => "queue_scaling",
            Setting::IqCapacity(_) => "iq_capacity",
            Setting::Mshrs(_) => "mshrs",
            Setting::UnitSplit { .. } => "unit_split",
            Setting::L1Associativity(_) => "l1_associativity",
            Setting::FetchThreadsPerCycle(_) => "fetch_threads",
            Setting::FetchPolicy(_) => "fetch_policy",
            Setting::Workload(_) => "workload",
        }
    }

    /// The value rendered for records and CSV cells.
    #[must_use]
    pub fn value_label(&self) -> String {
        match *self {
            Setting::L2Latency(lat) => lat.to_string(),
            Setting::Threads(n) => n.to_string(),
            Setting::Decoupled(d) => d.to_string(),
            Setting::QueueScaling(s) => s.to_string(),
            Setting::IqCapacity(n) => n.to_string(),
            Setting::Mshrs(n) => n.to_string(),
            Setting::UnitSplit { ap, ep } => format!("{ap}ap+{ep}ep"),
            Setting::L1Associativity(a) => a.to_string(),
            Setting::FetchThreadsPerCycle(n) => n.to_string(),
            Setting::FetchPolicy(p) => p.label().to_string(),
            Setting::Workload(ref w) => w.label(),
        }
    }
}

/// One swept dimension: a named list of [`Setting`]s.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Axis {
    /// Axis name; defaults to the settings' knob name.
    pub name: String,
    /// The values swept along this axis.
    pub settings: Vec<Setting>,
}

impl Axis {
    /// An axis over explicit settings.
    ///
    /// # Panics
    ///
    /// Panics if `settings` is empty.
    #[must_use]
    pub fn new(name: impl Into<String>, settings: Vec<Setting>) -> Self {
        assert!(!settings.is_empty(), "axis needs at least one setting");
        Axis {
            name: name.into(),
            settings,
        }
    }

    fn of(settings: Vec<Setting>) -> Self {
        let name = settings[0].axis_name().to_string();
        Axis::new(name, settings)
    }

    /// An L2-latency axis.
    #[must_use]
    pub fn l2_latencies(values: &[u64]) -> Self {
        Axis::of(values.iter().map(|&v| Setting::L2Latency(v)).collect())
    }

    /// A hardware-context-count axis.
    #[must_use]
    pub fn threads(values: &[usize]) -> Self {
        Axis::of(values.iter().map(|&v| Setting::Threads(v)).collect())
    }

    /// A decoupled-on/off axis.
    #[must_use]
    pub fn decoupled(values: &[bool]) -> Self {
        Axis::of(values.iter().map(|&v| Setting::Decoupled(v)).collect())
    }

    /// An instruction-queue-depth axis.
    #[must_use]
    pub fn iq_capacities(values: &[usize]) -> Self {
        Axis::of(values.iter().map(|&v| Setting::IqCapacity(v)).collect())
    }

    /// An MSHR-count axis.
    #[must_use]
    pub fn mshr_counts(values: &[usize]) -> Self {
        Axis::of(values.iter().map(|&v| Setting::Mshrs(v)).collect())
    }

    /// An AP/EP-split axis.
    #[must_use]
    pub fn unit_splits(values: &[(usize, usize)]) -> Self {
        Axis::of(
            values
                .iter()
                .map(|&(ap, ep)| Setting::UnitSplit { ap, ep })
                .collect(),
        )
    }

    /// An L1-associativity axis.
    #[must_use]
    pub fn l1_associativities(values: &[usize]) -> Self {
        Axis::of(
            values
                .iter()
                .map(|&v| Setting::L1Associativity(v))
                .collect(),
        )
    }

    /// A fetch-policy axis (the paper's Section 3.1 I-COUNT vs round-robin
    /// discussion).
    #[must_use]
    pub fn fetch_policies(values: &[FetchPolicy]) -> Self {
        Axis::of(values.iter().map(|&v| Setting::FetchPolicy(v)).collect())
    }

    /// A workload axis: each value replaces the cell's workload, so grids
    /// can sweep heterogeneous assembled-program mixes against config knobs.
    #[must_use]
    pub fn workloads(values: &[WorkloadSpec]) -> Self {
        Axis::of(
            values
                .iter()
                .map(|v| Setting::Workload(v.clone()))
                .collect(),
        )
    }
}

/// How per-cell seeds are derived from the grid seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SeedMode {
    /// Every cell uses the grid seed verbatim. This matches the historical
    /// harness behaviour and keeps a swept knob the *only* difference
    /// between neighbouring cells.
    Shared,
    /// Each cell uses `splitmix64(grid_seed ^ cell_index)`, decorrelating
    /// the workloads of different cells.
    PerCell,
}

/// A declarative sweep: workloads × the cartesian product of the axes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepGrid {
    /// Grid name (used in reports and export file names).
    pub name: String,
    /// Configuration every cell starts from.
    pub base: SimConfig,
    /// Workloads crossed with the axes (outermost dimension).
    pub workloads: Vec<WorkloadSpec>,
    /// Swept knobs; later axes vary fastest.
    pub axes: Vec<Axis>,
    /// Base seed.
    pub seed: u64,
    /// Instructions simulated per cell.
    pub budget: u64,
    /// Per-cell seed derivation.
    pub seed_mode: SeedMode,
}

impl SweepGrid {
    /// A grid with no workloads or axes yet; one cell per workload until
    /// axes are added. Defaults: seed 42, 100k-instruction budget,
    /// [`SeedMode::Shared`].
    #[must_use]
    pub fn new(name: impl Into<String>, base: SimConfig) -> Self {
        SweepGrid {
            name: name.into(),
            base,
            workloads: Vec::new(),
            axes: Vec::new(),
            seed: 42,
            budget: 100_000,
            seed_mode: SeedMode::Shared,
        }
    }

    /// Adds a workload.
    #[must_use]
    pub fn with_workload(mut self, workload: WorkloadSpec) -> Self {
        self.workloads.push(workload);
        self
    }

    /// Adds several workloads.
    #[must_use]
    pub fn with_workloads(mut self, workloads: impl IntoIterator<Item = WorkloadSpec>) -> Self {
        self.workloads.extend(workloads);
        self
    }

    /// Adds an axis (later axes vary fastest).
    #[must_use]
    pub fn with_axis(mut self, axis: Axis) -> Self {
        self.axes.push(axis);
        self
    }

    /// Sets the base seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the per-cell instruction budget.
    #[must_use]
    pub fn with_budget(mut self, budget: u64) -> Self {
        self.budget = budget;
        self
    }

    /// Sets the seed derivation mode.
    #[must_use]
    pub fn with_seed_mode(mut self, mode: SeedMode) -> Self {
        self.seed_mode = mode;
        self
    }

    /// Number of cells (workloads × product of axis lengths).
    #[must_use]
    pub fn len(&self) -> usize {
        self.workloads.len()
            * self
                .axes
                .iter()
                .map(|a| a.settings.len())
                .product::<usize>()
    }

    /// Whether the grid has no cells.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materialises every cell, in deterministic order: workloads outermost,
    /// then each axis left to right with the last axis varying fastest.
    #[must_use]
    pub fn cells(&self) -> Vec<Cell> {
        let mut cells = Vec::with_capacity(self.len());
        for workload in &self.workloads {
            let mut picks = vec![0usize; self.axes.len()];
            loop {
                let mut config = self.base.clone();
                let mut cell_workload = workload.clone();
                let mut labels = Vec::with_capacity(self.axes.len());
                for (axis, &pick) in self.axes.iter().zip(&picks) {
                    let setting = &axis.settings[pick];
                    if let Setting::Workload(w) = setting {
                        cell_workload = w.clone();
                    }
                    config = setting.apply(config);
                    labels.push((axis.name.clone(), setting.value_label()));
                }
                let index = cells.len();
                let seed = match self.seed_mode {
                    SeedMode::Shared => self.seed,
                    SeedMode::PerCell => splitmix64(self.seed ^ index as u64),
                };
                cells.push(Cell {
                    index,
                    workload_label: cell_workload.label(),
                    labels,
                    scenario: Scenario {
                        config,
                        workload: cell_workload,
                        seed,
                        budget: self.budget,
                    },
                });
                // Odometer increment over the axes, last axis fastest.
                let mut i = self.axes.len();
                loop {
                    if i == 0 {
                        break;
                    }
                    i -= 1;
                    picks[i] += 1;
                    if picks[i] < self.axes[i].settings.len() {
                        break;
                    }
                    picks[i] = 0;
                }
                if picks.iter().all(|&p| p == 0) {
                    break;
                }
            }
        }
        cells
    }
}

/// One materialised grid point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cell {
    /// Position in grid order.
    pub index: usize,
    /// Workload label.
    pub workload_label: String,
    /// (axis name, value label) pairs in axis order.
    pub labels: Vec<(String, String)>,
    /// The fully specified simulation.
    pub scenario: Scenario,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> SweepGrid {
        SweepGrid::new("t", SimConfig::paper_multithreaded(1))
            .with_workload(WorkloadSpec::spec_mix(1_000))
            .with_axis(Axis::threads(&[1, 2, 3]))
            .with_axis(Axis::l2_latencies(&[16, 64]))
            .with_budget(5_000)
    }

    #[test]
    fn cartesian_order_is_last_axis_fastest() {
        let cells = grid().cells();
        assert_eq!(cells.len(), 6);
        let got: Vec<(usize, u64)> = cells
            .iter()
            .map(|c| {
                (
                    c.scenario.config.num_threads,
                    c.scenario.config.mem.l2_latency,
                )
            })
            .collect();
        assert_eq!(
            got,
            vec![(1, 16), (1, 64), (2, 16), (2, 64), (3, 16), (3, 64)]
        );
        assert_eq!(
            cells[3].labels,
            vec![
                ("threads".to_string(), "2".to_string()),
                ("l2_latency".to_string(), "64".to_string()),
            ]
        );
        assert!(cells.iter().enumerate().all(|(i, c)| c.index == i));
    }

    #[test]
    fn threads_setting_matches_paper_constructor() {
        for n in 1..=6 {
            let cell_cfg = Setting::Threads(n).apply(SimConfig::paper_multithreaded(1));
            assert_eq!(cell_cfg, SimConfig::paper_multithreaded(n));
        }
    }

    #[test]
    fn axis_free_grid_has_one_cell_per_workload() {
        let g = SweepGrid::new("w", SimConfig::paper_multithreaded(1)).with_workloads([
            WorkloadSpec::benchmark("swim"),
            WorkloadSpec::benchmark("apsi"),
        ]);
        let cells = g.cells();
        assert_eq!(cells.len(), 2);
        assert_eq!(g.len(), 2);
        assert_eq!(cells[0].workload_label, "swim");
        assert!(cells[0].labels.is_empty());
    }

    #[test]
    fn seed_modes_derive_distinct_seeds() {
        let shared = grid().with_seed(9).cells();
        assert!(shared.iter().all(|c| c.scenario.seed == 9));
        let per_cell = grid()
            .with_seed(9)
            .with_seed_mode(SeedMode::PerCell)
            .cells();
        let mut seeds: Vec<u64> = per_cell.iter().map(|c| c.scenario.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), per_cell.len(), "per-cell seeds are distinct");
    }

    #[test]
    fn settings_apply_the_documented_knob() {
        let base = SimConfig::paper_multithreaded(2);
        assert_eq!(
            Setting::L2Latency(99).apply(base.clone()).mem.l2_latency,
            99
        );
        assert!(!Setting::Decoupled(false).apply(base.clone()).decoupled);
        assert!(
            Setting::QueueScaling(true)
                .apply(base.clone())
                .scale_queues_with_latency
        );
        assert_eq!(Setting::IqCapacity(7).apply(base.clone()).iq_capacity, 7);
        assert_eq!(Setting::Mshrs(3).apply(base.clone()).mem.l1d.mshrs, 3);
        let split = Setting::UnitSplit { ap: 5, ep: 3 }.apply(base.clone());
        assert_eq!((split.ap_units, split.ep_units), (5, 3));
        assert_eq!(
            Setting::L1Associativity(4)
                .apply(base.clone())
                .mem
                .l1d
                .associativity,
            4
        );
        assert_eq!(
            Setting::FetchThreadsPerCycle(1)
                .apply(base.clone())
                .fetch_threads_per_cycle,
            1
        );
        assert_eq!(
            Setting::FetchPolicy(FetchPolicy::RoundRobin)
                .apply(base)
                .fetch_policy,
            FetchPolicy::RoundRobin
        );
    }

    #[test]
    fn workload_axis_overrides_the_cell_workload() {
        let mixes = [
            WorkloadSpec::programs(&[("a", "top: subi r1, r1, 1\n bnz r1, top\n halt")]),
            WorkloadSpec::programs(&[("b", "top: fadd f1, f1, f2\n br top")]),
        ];
        let g = SweepGrid::new("wl", SimConfig::paper_multithreaded(2))
            .with_workload(WorkloadSpec::spec_mix(1_000))
            .with_axis(Axis::workloads(&mixes))
            .with_axis(Axis::l2_latencies(&[1, 16]))
            .with_budget(2_000);
        let cells = g.cells();
        assert_eq!(cells.len(), 4);
        // The axis replaces the grid-level workload in every cell...
        assert_eq!(cells[0].scenario.workload, mixes[0]);
        assert_eq!(cells[2].scenario.workload, mixes[1]);
        assert_eq!(cells[0].workload_label, "asm:a");
        assert_eq!(cells[2].workload_label, "asm:b");
        // ...while config axes still apply, and labels carry both.
        assert_eq!(cells[1].scenario.config.mem.l2_latency, 16);
        assert_eq!(
            cells[2].labels,
            vec![
                ("workload".to_string(), "asm:b".to_string()),
                ("l2_latency".to_string(), "1".to_string()),
            ]
        );
    }

    #[test]
    fn fetch_policy_axis_sweeps_the_policy() {
        let axis = Axis::fetch_policies(&[FetchPolicy::ICount, FetchPolicy::RoundRobin]);
        assert_eq!(axis.name, "fetch_policy");
        let g = SweepGrid::new("fp", SimConfig::paper_multithreaded(2))
            .with_workload(WorkloadSpec::spec_mix(1_000))
            .with_axis(axis)
            .with_budget(2_000);
        let cells = g.cells();
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].scenario.config.fetch_policy, FetchPolicy::ICount);
        assert_eq!(
            cells[1].scenario.config.fetch_policy,
            FetchPolicy::RoundRobin
        );
        assert_eq!(
            cells[1].labels,
            vec![("fetch_policy".to_string(), "round-robin".to_string())]
        );
        // Both policies simulate, and the policy changes the cache key.
        assert_ne!(cells[0].scenario.cache_key(), cells[1].scenario.cache_key());
        let a = cells[0].scenario.execute();
        let b = cells[1].scenario.execute();
        assert!(a.ipc() > 0.0 && b.ipc() > 0.0);
    }
}
