//! The sweep engine: grid → cells → pool (→ batched drive, → cache) → report.

use std::time::Instant;

use crate::cache::{CacheMode, CacheStats, ResultCache};
use crate::{batch, pool, CellPerf, RunRecord, SweepGrid, SweepReport};

/// Executes [`SweepGrid`]s on a work-stealing pool with optional caching.
#[derive(Debug)]
pub struct SweepEngine {
    /// Maximum concurrent cells.
    pub workers: usize,
    /// Cells driven interleaved per worker pass (the batched-cell drive
    /// loop, see [`crate::batch`]); 1 runs each cell to completion alone.
    pub batch: usize,
    /// Cache policy.
    pub cache: CacheMode,
    /// Render a live `cells/s + ETA` progress line on stderr while running
    /// (`dsmt sweep run --progress`).
    pub progress: bool,
}

impl SweepEngine {
    /// An engine with `workers` workers, the environment's cache policy
    /// (`DSMT_SWEEP_CACHE`, see [`CacheMode::from_env`]) and the
    /// environment's batch size (`DSMT_SWEEP_BATCH`, see
    /// [`batch::batch_from_env`]).
    #[must_use]
    pub fn new(workers: usize) -> Self {
        SweepEngine {
            workers: workers.max(1),
            batch: batch::batch_from_env(),
            cache: CacheMode::from_env(),
            progress: false,
        }
    }

    /// Sets the batched-drive size (min 1).
    #[must_use]
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch.max(1);
        self
    }

    /// An engine sized to the machine.
    #[must_use]
    pub fn from_env() -> Self {
        let workers = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(4);
        SweepEngine::new(workers)
    }

    /// Disables the cache.
    #[must_use]
    pub fn without_cache(mut self) -> Self {
        self.cache = CacheMode::Disabled;
        self
    }

    /// Caches under an explicit directory.
    #[must_use]
    pub fn with_cache_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.cache = CacheMode::Dir(dir.into());
        self
    }

    /// Enables the live progress line.
    #[must_use]
    pub fn with_progress(mut self) -> Self {
        self.progress = true;
        self
    }

    /// Runs every cell of the grid and returns the records in grid order.
    ///
    /// Records are bit-identical for any `workers` value and whether or not
    /// cells were answered from the cache; only the report's hit/miss
    /// counters reveal the difference.
    ///
    /// # Panics
    ///
    /// Panics if a cell's configuration is invalid or a workload names an
    /// unknown benchmark (grid construction bugs), or if the cache
    /// directory cannot be created.
    #[must_use]
    pub fn run(&self, grid: &SweepGrid) -> SweepReport {
        self.run_many(std::slice::from_ref(grid))
            .pop()
            .expect("one report per grid")
    }

    /// Runs several grids through **one** shared worker pool and returns one
    /// report per grid, in input order.
    ///
    /// Prefer this over sequential [`SweepEngine::run`] calls when a figure
    /// is made of several small grids (Figure 5's two latencies, the four
    /// ablation studies): cells of all grids interleave across the workers,
    /// so wall-clock tracks the single slowest cell instead of the sum of
    /// each grid's slowest.
    ///
    /// # Panics
    ///
    /// As for [`SweepEngine::run`].
    #[must_use]
    pub fn run_many(&self, grids: &[SweepGrid]) -> Vec<SweepReport> {
        let cache = self.open_cache();
        let stats: Vec<CacheStats> = grids.iter().map(|_| CacheStats::default()).collect();
        // (grid index, cell) jobs, concatenated in grid order.
        let jobs: Vec<(usize, crate::Cell)> = grids
            .iter()
            .enumerate()
            .flat_map(|(gi, grid)| grid.cells().into_iter().map(move |c| (gi, c)))
            .collect();

        let span = dsmt_obs::span("sweep.run")
            .field("grids", grids.len())
            .field("cells", jobs.len())
            .field("workers", self.workers);
        let progress = self
            .progress
            .then(|| crate::ProgressLine::start(jobs.len()));
        let done = progress.as_ref().map(crate::ProgressLine::counter);
        let records = pool::run_batched(&jobs, self.workers, self.batch, |_, slice| {
            let items: Vec<(&str, &CacheStats, &crate::Cell)> = slice
                .iter()
                .map(|(gi, cell)| (grids[*gi].name.as_str(), &stats[*gi], cell))
                .collect();
            let records = execute_batch(cache.as_ref(), &items);
            if let Some(done) = &done {
                done.fetch_add(slice.len(), std::sync::atomic::Ordering::Relaxed);
            }
            records
        });
        if let Some(progress) = progress {
            progress.finish();
        }
        drop(span);
        // A process-wide snapshot attached to each report while tracing is
        // on; excluded from identity, so reports stay comparable.
        let metrics_snapshot =
            dsmt_obs::enabled(dsmt_obs::Level::Info).then(|| dsmt_obs::registry().snapshot());
        // Split the flat record list back into per-grid reports. Jobs were
        // concatenated in grid order, and run_indexed preserves input order.
        let mut records = records.into_iter();
        let reports = grids
            .iter()
            .zip(&stats)
            .map(|(grid, stats)| {
                let records: Vec<RunRecord> = records.by_ref().take(grid.len()).collect();
                // Per-grid compute seconds: the sum of this grid's own cell
                // wall times. Additive across grids and across merges (the
                // engine wall clock is shared by every grid in the batch and
                // would double-count).
                let wall_secs = records.iter().map(|r| r.perf.wall_secs).sum();
                dsmt_obs::info!(
                    "sweep.done",
                    grid = grid.name.as_str(),
                    cells = records.len(),
                    cache_hits = stats.hits(),
                    cache_misses = stats.misses(),
                    wall_secs = wall_secs
                );
                SweepReport {
                    grid: grid.name.clone(),
                    records,
                    cache_hits: stats.hits(),
                    cache_misses: stats.misses(),
                    wall_secs,
                    metrics: metrics_snapshot.clone(),
                }
            })
            .collect();
        // Publish the remaining misses now (Drop would too, but an
        // explicit flush keeps the publish point well-defined). Sweeps
        // with at most FLUSH_THRESHOLD misses publish exactly one
        // key-sorted segment; larger ones flush incrementally, with
        // scheduling-dependent batch boundaries.
        if let Some(cache) = cache.as_ref() {
            cache.flush();
        }
        Self::maybe_gc(cache.as_ref());
        reports
    }

    /// Runs only the cells of `grid` selected by `indices` (original grid
    /// positions), returning the records in the order given. This is the
    /// shard-execution entry point: a manifest hands each host a slice of
    /// the cell space, the shared cache dedups any overlap, and records keep
    /// their grid-order `cell` indices so shards reassemble exactly.
    ///
    /// Under the store transport the cache directory does double duty:
    /// point this engine's cache at the fleet's store directory and the
    /// scenario results simulated here share segments (and GC policy) with
    /// the shard outputs the executor publishes there afterwards — the
    /// "one store directory" protocol (see `dsmt_shard::transport`).
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range, plus the cases of
    /// [`SweepEngine::run`].
    #[must_use]
    pub fn run_subset(&self, grid: &SweepGrid, indices: &[usize]) -> SweepReport {
        let cache = self.open_cache();
        let stats = CacheStats::default();
        let all_cells = grid.cells();
        let cells: Vec<&crate::Cell> = indices
            .iter()
            .map(|&i| {
                all_cells.get(i).unwrap_or_else(|| {
                    panic!(
                        "cell index {i} out of range (grid has {} cells)",
                        all_cells.len()
                    )
                })
            })
            .collect();
        let span = dsmt_obs::span("sweep.run_subset")
            .field("grid", grid.name.as_str())
            .field("cells", cells.len())
            .field("workers", self.workers);
        let progress = self
            .progress
            .then(|| crate::ProgressLine::start(cells.len()));
        let done = progress.as_ref().map(crate::ProgressLine::counter);
        let records = pool::run_batched(&cells, self.workers, self.batch, |_, slice| {
            let items: Vec<(&str, &CacheStats, &crate::Cell)> = slice
                .iter()
                .map(|cell| (grid.name.as_str(), &stats, *cell))
                .collect();
            let records = execute_batch(cache.as_ref(), &items);
            if let Some(done) = &done {
                done.fetch_add(slice.len(), std::sync::atomic::Ordering::Relaxed);
            }
            records
        });
        if let Some(progress) = progress {
            progress.finish();
        }
        drop(span);
        let wall_secs = records.iter().map(|r| r.perf.wall_secs).sum();
        let report = SweepReport {
            grid: grid.name.clone(),
            records,
            cache_hits: stats.hits(),
            cache_misses: stats.misses(),
            wall_secs,
            metrics: dsmt_obs::enabled(dsmt_obs::Level::Info)
                .then(|| dsmt_obs::registry().snapshot()),
        };
        if let Some(cache) = cache.as_ref() {
            cache.flush();
        }
        Self::maybe_gc(cache.as_ref());
        report
    }

    fn open_cache(&self) -> Option<ResultCache> {
        match &self.cache {
            CacheMode::Disabled => None,
            CacheMode::Dir(dir) => {
                Some(ResultCache::open(dir).unwrap_or_else(|e| {
                    panic!("cannot open sweep cache at {}: {e}", dir.display())
                }))
            }
        }
    }

    /// Applies the `DSMT_SWEEP_CACHE_MAX_BYTES` cap, if configured, after a
    /// sweep finishes (so a sweep never evicts entries it is about to hit).
    fn maybe_gc(cache: Option<&ResultCache>) {
        if let (Some(cache), Some(max_bytes)) = (cache, CacheMode::max_bytes_from_env()) {
            let outcome = cache.gc(max_bytes);
            if outcome.evicted > 0 {
                dsmt_obs::warn!(
                    "sweep.gc_evicted",
                    evicted = outcome.evicted,
                    evicted_bytes = outcome.evicted_bytes,
                    max_bytes = max_bytes
                );
            }
        }
    }
}

impl Default for SweepEngine {
    fn default() -> Self {
        SweepEngine::from_env()
    }
}

/// Produces one [`RunRecord`] per `(grid name, stats, cell)` item, in input
/// order, through the (optional) cache — the **single** record-construction
/// path shared by [`SweepEngine::run_many`] and [`SweepEngine::run_subset`],
/// so sharded and monolithic runs cannot drift apart and break their
/// bit-identity guarantee.
///
/// Cache hits are answered up front; the remaining misses are then driven
/// as one interleaved batch ([`batch::drive`]) and published. Results do
/// not depend on the batch composition, only each cell's `wall_secs`
/// (excluded from record identity) does.
fn execute_batch(
    cache: Option<&ResultCache>,
    items: &[(&str, &CacheStats, &crate::Cell)],
) -> Vec<RunRecord> {
    // Answer what the cache already knows; collect the rest as one batch.
    let mut resolved: Vec<Option<(dsmt_core::SimResults, f64)>> = items
        .iter()
        .map(|(_, stats, cell)| {
            let started = Instant::now();
            let hit = cache.and_then(|c| c.try_hit(&cell.scenario, stats));
            hit.map(|r| (r, started.elapsed().as_secs_f64()))
        })
        .collect();
    let misses: Vec<usize> = (0..items.len())
        .filter(|&i| resolved[i].is_none())
        .collect();
    if !misses.is_empty() {
        let scenarios: Vec<&crate::Scenario> =
            misses.iter().map(|&i| &items[i].2.scenario).collect();
        for (&i, (results, wall_secs)) in misses.iter().zip(batch::drive(&scenarios)) {
            let (_, stats, cell) = items[i];
            match cache {
                Some(cache) => cache.publish_miss(&cell.scenario, &results, stats),
                None => stats.count_uncached_miss(),
            }
            resolved[i] = Some((results, wall_secs));
        }
    }
    items
        .iter()
        .zip(resolved)
        .map(|((grid_name, _, cell), slot)| {
            let (results, wall_secs) = slot.expect("every batched cell resolves");
            dsmt_obs::histogram!("sweep.cell_wall_us").record((wall_secs * 1e6) as u64);
            let perf = CellPerf::new(&results, wall_secs);
            RunRecord {
                cell: cell.index,
                grid: grid_name.to_string(),
                workload: cell.workload_label.clone(),
                labels: cell.labels.clone(),
                key: cell.scenario.cache_key_hex(),
                scenario: cell.scenario.clone(),
                results,
                perf,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Axis, WorkloadSpec};
    use dsmt_core::SimConfig;

    fn tiny_grid(name: &str) -> SweepGrid {
        SweepGrid::new(name, SimConfig::paper_multithreaded(1))
            .with_workload(WorkloadSpec::spec_mix(2_000))
            .with_axis(Axis::l2_latencies(&[1, 16, 64]))
            .with_axis(Axis::decoupled(&[true, false]))
            .with_budget(6_000)
    }

    #[test]
    fn identical_records_across_worker_counts() {
        let grid = tiny_grid("det");
        let reference = SweepEngine::new(1).without_cache().run(&grid);
        for workers in [2, 4, 8] {
            let got = SweepEngine::new(workers).without_cache().run(&grid);
            assert_eq!(got.records, reference.records, "workers={workers}");
        }
        assert_eq!(reference.len(), 6);
        assert_eq!(reference.cache_misses, 6);
    }

    #[test]
    fn identical_records_across_batch_sizes() {
        let grid = tiny_grid("det-batch");
        let reference = SweepEngine::new(1).without_cache().with_batch(1).run(&grid);
        for (workers, batch) in [(1, 3), (1, 8), (2, 2), (4, 3), (8, 8)] {
            let got = SweepEngine::new(workers)
                .without_cache()
                .with_batch(batch)
                .run(&grid);
            assert_eq!(
                got.records, reference.records,
                "workers={workers} batch={batch}"
            );
        }
    }

    #[test]
    fn batched_subset_matches_unbatched_subset() {
        let grid = tiny_grid("det-batch-subset");
        let reference = SweepEngine::new(1)
            .without_cache()
            .with_batch(1)
            .run_subset(&grid, &[5, 0, 2, 4]);
        let got = SweepEngine::new(2)
            .without_cache()
            .with_batch(4)
            .run_subset(&grid, &[5, 0, 2, 4]);
        assert_eq!(got.records, reference.records);
        assert_eq!(got.cache_misses, 4);
    }

    #[test]
    fn run_many_splits_reports_per_grid() {
        let a = tiny_grid("many-a");
        let mut b = tiny_grid("many-b");
        b.axes.pop(); // 3 cells instead of 6
        let reports = SweepEngine::new(4)
            .without_cache()
            .run_many(&[a.clone(), b.clone()]);
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].grid, "many-a");
        assert_eq!(reports[1].grid, "many-b");
        assert_eq!(reports[0].records.len(), 6);
        assert_eq!(reports[1].records.len(), 3);
        assert_eq!(reports[0].cache_misses, 6);
        assert_eq!(reports[1].cache_misses, 3);
        // Same results as running the grids separately.
        assert_eq!(
            reports[0].records,
            SweepEngine::new(1).without_cache().run(&a).records
        );
        assert_eq!(
            reports[1].records,
            SweepEngine::new(1).without_cache().run(&b).records
        );
    }

    #[test]
    fn engine_reports_grid_name_and_order() {
        let report = SweepEngine::new(3).without_cache().run(&tiny_grid("order"));
        assert_eq!(report.grid, "order");
        let cells: Vec<usize> = report.records.iter().map(|r| r.cell).collect();
        assert_eq!(cells, (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn run_subset_matches_the_full_run_cell_for_cell() {
        let grid = tiny_grid("subset");
        let full = SweepEngine::new(2).without_cache().run(&grid);
        let subset = SweepEngine::new(2)
            .without_cache()
            .run_subset(&grid, &[4, 1, 3]);
        assert_eq!(subset.records.len(), 3);
        assert_eq!(subset.cache_misses, 3);
        for (record, &want) in subset.records.iter().zip(&[4usize, 1, 3]) {
            assert_eq!(record.cell, want);
            assert_eq!(record, &full.records[want]);
        }
        // The empty subset is a valid (empty) report.
        let empty = SweepEngine::new(2).without_cache().run_subset(&grid, &[]);
        assert!(empty.records.is_empty());
        assert_eq!(empty.grid, "subset");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn run_subset_rejects_out_of_range_indices() {
        let grid = tiny_grid("subset-oob");
        let _ = SweepEngine::new(1).without_cache().run_subset(&grid, &[6]);
    }

    #[test]
    fn run_subset_shares_the_cache_with_full_runs() {
        let dir =
            std::env::temp_dir().join(format!("dsmt-engine-subset-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let grid = tiny_grid("subset-cache");
        let engine = SweepEngine::new(2).with_cache_dir(&dir);
        let warm = engine.run_subset(&grid, &[0, 1, 2]);
        assert_eq!(warm.cache_misses, 3);
        // A full run replays those three cells from the cache.
        let full = engine.run(&grid);
        assert_eq!(full.cache_hits, 3);
        assert_eq!(full.cache_misses, 3);
        // And re-running the subset is a pure replay.
        let replay = engine.run_subset(&grid, &[2, 0]);
        assert_eq!((replay.cache_hits, replay.cache_misses), (2, 0));
        assert_eq!(replay.records[0], full.records[2]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
