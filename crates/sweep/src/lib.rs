//! # dsmt-sweep
//!
//! A parallel **scenario-sweep engine** for the DSMT simulator. Every figure
//! of Parcerisa & González (HPCA 1999) is a parameter sweep — L2 latencies,
//! thread counts, instruction-queue depths, decoupling on/off — and this
//! crate is the one place that knows how to run such sweeps well:
//!
//! * **Declarative grids** — [`SweepGrid`] describes a cartesian space of
//!   [`Setting`] axes over [`SimConfig`](dsmt_core::SimConfig) knobs crossed
//!   with [`WorkloadSpec`] workloads (the ten SPEC FP95 profiles,
//!   multiprogram mixes, custom profiles).
//! * **Deterministic parallelism** — a work-stealing pool over
//!   `std::thread` executes cells concurrently. Each cell's seed is a pure
//!   function of the grid seed (and, in per-cell mode, the cell index), so
//!   the resulting [`RunRecord`]s are bit-identical at any worker count.
//! * **Result caching** — an on-disk cache keyed by a hash of
//!   (config, workload, seed, instruction budget) lets a re-run of
//!   `all_experiments` simulate only changed cells. See [`cache`].
//! * **Structured export** — [`SweepReport`] serializes to JSON and CSV for
//!   downstream tooling; `dsmt-experiments` renders the same records as
//!   tables.
//!
//! ## Quick start
//!
//! ```
//! use dsmt_core::SimConfig;
//! use dsmt_sweep::{Axis, SweepEngine, SweepGrid, WorkloadSpec};
//!
//! let grid = SweepGrid::new("demo", SimConfig::paper_multithreaded(1))
//!     .with_workload(WorkloadSpec::spec_mix(4_000))
//!     .with_axis(Axis::l2_latencies(&[1, 16]))
//!     .with_axis(Axis::threads(&[1, 2]))
//!     .with_seed(42)
//!     .with_budget(10_000);
//! assert_eq!(grid.len(), 4);
//!
//! let report = SweepEngine::new(2).without_cache().run(&grid);
//! assert_eq!(report.records.len(), 4);
//! assert!(report.records.iter().all(|r| r.results.ipc() > 0.0));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod batch;
pub mod cache;
pub mod engine;
pub mod export;
pub mod grid;
pub mod pool;
pub mod record;
pub mod scenario;
pub mod telemetry;

pub use cache::{migrate_v2, CacheMode, CacheStats, MigrateOutcome, ResultCache};
pub use engine::SweepEngine;
pub use grid::{Axis, Cell, SeedMode, Setting, SweepGrid};
pub use record::{CellPerf, RunRecord, SweepReport};
pub use scenario::{AsmSource, Scenario, WorkloadSpec};
pub use telemetry::ProgressLine;

// The persistence layer's hash and segment surface, re-exported so sweep
// consumers need not depend on `dsmt-store` directly.
pub use dsmt_store::{fnv1a64, GcOutcome, SegmentInfo};

/// Bumped whenever the cache key derivation or the serialized record layout
/// changes; stale entries then miss instead of deserializing garbage.
/// Version 2: `SimConfig` gained the `fetch_policy` knob.
/// Version 3: entries moved from per-scenario JSON files into the
/// `dsmt-store` segment layout (see [`cache`]; `dsmt sweep migrate`
/// converts v2 directories).
pub const CACHE_SCHEMA_VERSION: u32 = 3;

/// SplitMix64 step, used to derive per-cell seeds from a grid seed.
#[must_use]
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_spreads_nearby_seeds() {
        assert_ne!(splitmix64(1), splitmix64(2));
        assert_ne!(splitmix64(0), 0);
    }
}
