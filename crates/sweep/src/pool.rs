//! A work-stealing worker pool over `std::thread` scoped threads.
//!
//! Cells of a sweep vary wildly in cost (a 16-thread, 256-cycle-latency cell
//! simulates far more work per instruction than a 1-thread, 1-cycle cell),
//! so static partitioning leaves workers idle. Here each worker owns a
//! contiguous range of the input; when it runs dry it steals the upper half
//! of the largest remaining range.
//!
//! Two properties keep synchronisation off the critical path (in the spirit
//! of deterministic chunked work distribution à la Bobpp, arXiv:1406.2844):
//!
//! * **chunked claims** — a worker pops a chunk of up to 1/8 of its
//!   remaining span per lock acquisition (not a single index), and a thief
//!   takes half the victim's span in one acquisition, so lock traffic is
//!   O(log n) per worker rather than O(n);
//! * **slab output** — every result is written into a pre-sized, per-cell
//!   slot (`Mutex<Option<O>>`, uncontended because exactly one worker ever
//!   touches a given cell), so there is no shared append vector to fight
//!   over and no final sort: outputs are already in input order.
//!
//! Determinism: the pool only affects *which worker* computes each output,
//! never the output itself — outputs are returned in input order, and each
//! job sees only its own input. Callers derive any randomness from the job
//! index, not from scheduling.

use std::sync::Mutex;

/// A half-open index range owned by one worker.
#[derive(Debug, Clone, Copy)]
struct Span {
    lo: usize,
    hi: usize,
}

impl Span {
    fn len(&self) -> usize {
        self.hi - self.lo
    }
}

/// How much of its remaining span a worker claims per lock acquisition
/// (`max(1, remaining / CHUNK_DIVISOR)`). Small enough to keep spans
/// stealable, large enough to amortise locking.
const CHUNK_DIVISOR: usize = 8;

/// Applies `f` to every item, running up to `workers` jobs concurrently on a
/// work-stealing pool, and returns the outputs in input order.
///
/// # Panics
///
/// Propagates panics from `f`.
pub fn run_indexed<I, O, F>(items: &[I], workers: usize, f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(usize, &I) -> O + Sync,
{
    run_batched(items, workers, 1, |base, slice| vec![f(base, &slice[0])])
}

/// Like [`run_indexed`], but hands `f` contiguous slices of up to
/// `max_batch` items at a time: `f(base, slice)` must return one output per
/// slice item, in order. The sweep engine's batched-cell drive loop uses
/// this to interleave several simulations per call; `max_batch = 1`
/// degenerates to per-item dispatch.
///
/// Work distribution is unchanged from [`run_indexed`] (chunked claims,
/// half-span steals): batches never cross a claimed chunk's boundary, so
/// outputs land in input order exactly as before.
///
/// # Panics
///
/// Propagates panics from `f`; panics if `f` returns the wrong number of
/// outputs for a slice.
pub fn run_batched<I, O, F>(items: &[I], workers: usize, max_batch: usize, f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(usize, &[I]) -> Vec<O> + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let max_batch = max_batch.max(1);
    let workers = workers.clamp(1, n);
    if workers == 1 {
        let mut out: Vec<O> = Vec::with_capacity(n);
        let mut lo = 0usize;
        while lo < n {
            let hi = (lo + max_batch).min(n);
            let batch = f(lo, &items[lo..hi]);
            assert_eq!(batch.len(), hi - lo, "batch at {lo} returned wrong count");
            out.extend(batch);
            lo = hi;
        }
        return out;
    }

    // Initial even partition; spans are then mutated by their owner (pop
    // chunks from the front) and by thieves (split off the back half).
    let spans: Vec<Mutex<Span>> = (0..workers)
        .map(|w| {
            let lo = w * n / workers;
            let hi = (w + 1) * n / workers;
            Mutex::new(Span { lo, hi })
        })
        .collect();

    // Pre-sized output slab, one slot per cell. Each slot is written exactly
    // once, so the per-slot locks are never contended; they exist to make
    // the scatter safe without `unsafe`.
    let slab: Vec<Mutex<Option<O>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let f = &f;
    let spans = &spans;
    let slab = &slab;

    std::thread::scope(|scope| {
        for me in 0..workers {
            scope.spawn(move || {
                let started = std::time::Instant::now();
                let mut busy = std::time::Duration::ZERO;
                let mut cells = 0u64;
                let mut steals = 0u64;
                loop {
                    // Claim the next chunk from my own span: one lock
                    // acquisition hands out up to 1/CHUNK_DIVISOR of what
                    // remains (always at least one index).
                    let chunk = {
                        let mut span = spans[me].lock().expect("span lock");
                        let remaining = span.len();
                        if remaining > 0 {
                            let take = (remaining / CHUNK_DIVISOR).max(1);
                            let lo = span.lo;
                            span.lo += take;
                            Some(Span { lo, hi: lo + take })
                        } else {
                            None
                        }
                    };
                    if let Some(chunk) = chunk {
                        dsmt_obs::counter!("sweep.pool.chunks").inc();
                        let chunk_started = std::time::Instant::now();
                        let mut lo = chunk.lo;
                        while lo < chunk.hi {
                            let hi = (lo + max_batch).min(chunk.hi);
                            let outs = f(lo, &items[lo..hi]);
                            assert_eq!(outs.len(), hi - lo, "batch at {lo} returned wrong count");
                            for (k, out) in outs.into_iter().enumerate() {
                                let mut slot = slab[lo + k].lock().expect("slab slot lock");
                                debug_assert!(slot.is_none(), "cell {} computed twice", lo + k);
                                *slot = Some(out);
                            }
                            lo = hi;
                        }
                        busy += chunk_started.elapsed();
                        cells += chunk.len() as u64;
                        continue;
                    }
                    // Steal the upper half of the largest remaining span,
                    // in a single lock acquisition on the victim.
                    let mut best: Option<(usize, usize)> = None; // (victim, len)
                    for (v, span) in spans.iter().enumerate() {
                        if v == me {
                            continue;
                        }
                        let len = span.lock().expect("span lock").len();
                        if len > 1 && best.is_none_or(|(_, l)| len > l) {
                            best = Some((v, len));
                        }
                    }
                    let Some((victim, _)) = best else {
                        break; // Nothing worth stealing anywhere: done.
                    };
                    let stolen = {
                        let mut span = spans[victim].lock().expect("span lock");
                        let len = span.len();
                        if len <= 1 {
                            None // Raced: the victim drained it meanwhile.
                        } else {
                            let mid = span.lo + len / 2;
                            let stolen = Span {
                                lo: mid,
                                hi: span.hi,
                            };
                            span.hi = mid;
                            Some(stolen)
                        }
                    };
                    if let Some(stolen) = stolen {
                        steals += 1;
                        dsmt_obs::counter!("sweep.pool.steals").inc();
                        let mut mine = spans[me].lock().expect("span lock");
                        *mine = stolen;
                    }
                }
                let busy_ms = busy.as_millis() as u64;
                let idle_ms = started.elapsed().saturating_sub(busy).as_millis() as u64;
                dsmt_obs::counter!("sweep.pool.busy_ms").add(busy_ms);
                dsmt_obs::counter!("sweep.pool.idle_ms").add(idle_ms);
                dsmt_obs::debug!(
                    "sweep.pool.worker_done",
                    worker = me,
                    cells = cells,
                    steals = steals,
                    busy_ms = busy_ms,
                    idle_ms = idle_ms
                );
            });
        }
    });

    slab.iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.lock()
                .expect("slab slot lock")
                .take()
                .unwrap_or_else(|| panic!("cell {i} produced no output"))
        })
        .collect()
}

/// Order-preserving parallel map (the classic harness entry point).
pub fn parallel_map<I, O, F>(inputs: Vec<I>, workers: usize, f: F) -> Vec<O>
where
    I: Send + Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    run_indexed(&inputs, workers, |_, x| f(x))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn outputs_are_in_input_order_for_any_worker_count() {
        let inputs: Vec<u64> = (0..101).collect();
        let expect: Vec<u64> = inputs.iter().map(|x| x * 3).collect();
        for workers in [1, 2, 3, 8, 64, 200] {
            let out = parallel_map(inputs.clone(), workers, |x| x * 3);
            assert_eq!(out, expect, "workers={workers}");
        }
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let n = 500;
        let counters: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        let items: Vec<usize> = (0..n).collect();
        let out = run_indexed(&items, 7, |i, &x| {
            counters[i].fetch_add(1, Ordering::SeqCst);
            x
        });
        assert_eq!(out, items);
        assert!(counters.iter().all(|c| c.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn uneven_job_costs_still_complete() {
        // Front-loaded cost forces stealing from the first worker's span.
        let items: Vec<u64> = (0..64).collect();
        let out = run_indexed(&items, 8, |i, &x| {
            if i < 8 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            x + 1
        });
        assert_eq!(out, (1..=64).collect::<Vec<_>>());
    }

    #[test]
    fn chunked_claims_cover_every_index() {
        // More items than workers by a wide margin exercises repeated
        // chunked pops (remaining/8 shrinking to 1) and steals.
        let n = 1013; // prime: uneven partitions everywhere
        let items: Vec<usize> = (0..n).collect();
        let out = run_indexed(&items, 5, |i, &x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(out, (0..n).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u64> = Vec::new();
        assert!(parallel_map(empty, 4, |x: &u64| *x).is_empty());
        assert_eq!(parallel_map(vec![5u64], 4, |x| x + 1), vec![6]);
    }
}
