//! JSON and CSV export of sweep reports.
//!
//! JSON carries the full records (scenario provenance included) for
//! programmatic consumers; CSV flattens the headline metrics plus one column
//! per swept axis for spreadsheets and plotting scripts.

use std::io::Write;
use std::path::Path;

use crate::{RunRecord, SweepReport};

/// The metric columns every CSV export carries, in order. The last two are
/// host-throughput telemetry from [`RunRecord::perf`] (machine-dependent,
/// excluded from record equality but exported for perf tracking).
pub const CSV_METRICS: [&str; 12] = [
    "ipc",
    "cycles",
    "instructions",
    "perceived",
    "perceived_fp",
    "perceived_int",
    "load_miss_ratio",
    "store_miss_ratio",
    "bus_utilization",
    "branch_accuracy",
    "instructions_per_sec",
    "sim_cycles_per_sec",
];

fn metric_values(record: &RunRecord) -> [String; 12] {
    let r = &record.results;
    [
        format!("{:?}", r.ipc()),
        r.cycles.to_string(),
        r.instructions.to_string(),
        format!("{:?}", r.perceived.combined()),
        format!("{:?}", r.perceived.fp()),
        format!("{:?}", r.perceived.int()),
        format!("{:?}", r.load_miss_ratio()),
        format!("{:?}", r.store_miss_ratio()),
        format!("{:?}", r.bus_utilization),
        format!("{:?}", r.branch_accuracy),
        format!("{:.1}", record.perf.instructions_per_sec),
        format!("{:.1}", record.perf.sim_cycles_per_sec),
    ]
}

/// Renders a report as CSV: `cell,workload,<axis...>,<metrics...>`.
///
/// Axis columns are the union of axis names across records, in first-seen
/// order (within one grid every record has the same axes; merged reports may
/// differ, missing values render empty).
#[must_use]
pub fn to_csv(report: &SweepReport) -> String {
    let axes = report.axis_names();
    let mut out = String::new();
    out.push_str("cell,workload");
    for axis in &axes {
        out.push(',');
        out.push_str(&csv_escape(axis));
    }
    for metric in CSV_METRICS {
        out.push(',');
        out.push_str(metric);
    }
    out.push('\n');
    for record in &report.records {
        out.push_str(&record.cell.to_string());
        out.push(',');
        out.push_str(&csv_escape(&record.workload));
        for axis in &axes {
            out.push(',');
            if let Some(v) = record.label(axis) {
                out.push_str(&csv_escape(v));
            }
        }
        for value in metric_values(record) {
            out.push(',');
            out.push_str(&value);
        }
        out.push('\n');
    }
    out
}

/// Renders a report as pretty JSON.
#[must_use]
pub fn to_json(report: &SweepReport) -> String {
    serde::to_string_pretty(report)
}

/// Writes the JSON form to a file, creating parent directories.
///
/// # Errors
///
/// Returns the underlying I/O error.
pub fn write_json(report: &SweepReport, path: impl AsRef<Path>) -> std::io::Result<()> {
    write_file(path.as_ref(), to_json(report).as_bytes())
}

/// Writes the CSV form to a file, creating parent directories.
///
/// # Errors
///
/// Returns the underlying I/O error.
pub fn write_csv(report: &SweepReport, path: impl AsRef<Path>) -> std::io::Result<()> {
    write_file(path.as_ref(), to_csv(report).as_bytes())
}

fn write_file(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut f = std::fs::File::create(path)?;
    f.write_all(bytes)
}

fn csv_escape(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Axis, SweepEngine, SweepGrid, WorkloadSpec};
    use dsmt_core::SimConfig;

    fn report() -> SweepReport {
        let grid = SweepGrid::new("exp", SimConfig::paper_multithreaded(1))
            .with_workload(WorkloadSpec::benchmark("hydro2d"))
            .with_axis(Axis::l2_latencies(&[1, 64]))
            .with_budget(4_000);
        SweepEngine::new(2).without_cache().run(&grid)
    }

    #[test]
    fn csv_has_header_axis_and_metric_columns() {
        let csv = to_csv(&report());
        let mut lines = csv.lines();
        let header = lines.next().expect("header");
        assert_eq!(
            header,
            "cell,workload,l2_latency,ipc,cycles,instructions,perceived,perceived_fp,\
             perceived_int,load_miss_ratio,store_miss_ratio,bus_utilization,branch_accuracy,\
             instructions_per_sec,sim_cycles_per_sec"
        );
        let rows: Vec<&str> = lines.collect();
        assert_eq!(rows.len(), 2);
        assert!(rows[0].starts_with("0,hydro2d,1,"));
        assert!(rows[1].starts_with("1,hydro2d,64,"));
        // Every row has the full column count.
        for row in rows {
            assert_eq!(row.split(',').count(), header.split(',').count(), "{row}");
        }
    }

    #[test]
    fn csv_escapes_embedded_delimiters() {
        assert_eq!(csv_escape("plain"), "plain");
        assert_eq!(csv_escape("a,b"), "\"a,b\"");
        assert_eq!(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn json_and_csv_files_round_trip_on_disk() {
        let report = report();
        let dir = std::env::temp_dir().join(format!("dsmt-export-test-{}", std::process::id()));
        let json_path = dir.join("nested/report.json");
        let csv_path = dir.join("report.csv");
        write_json(&report, &json_path).expect("json write");
        write_csv(&report, &csv_path).expect("csv write");
        let text = std::fs::read_to_string(&json_path).expect("json read");
        let back: SweepReport = serde::from_str(&text).expect("json parse");
        assert_eq!(back, report);
        assert!(std::fs::read_to_string(&csv_path)
            .expect("csv read")
            .starts_with("cell,workload"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
