//! The on-disk result cache.
//!
//! One JSON file per scenario, named by the scenario's cache key (a stable
//! hash over config, workload, seed and instruction budget — see
//! [`Scenario::cache_key`]). Each file stores the scenario alongside the
//! results, so a hit verifies the full scenario for equality: a hash
//! collision degrades to a miss instead of returning the wrong cell.
//!
//! Writes go through a temp file + rename, so a crash mid-write leaves no
//! half-entry behind. Unreadable or stale-schema entries are treated as
//! misses and overwritten.
//!
//! Configuration via environment:
//!
//! * `DSMT_SWEEP_CACHE=off` disables caching;
//! * `DSMT_SWEEP_CACHE=<dir>` uses `<dir>`;
//! * unset: `target/sweep-cache` under the current directory.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use dsmt_core::SimResults;
use serde::{Deserialize, Serialize};

use crate::{Scenario, CACHE_SCHEMA_VERSION};

/// Where (and whether) a sweep caches results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheMode {
    /// Never read or write the cache.
    Disabled,
    /// Cache under the given directory.
    Dir(PathBuf),
}

impl CacheMode {
    /// Resolves the mode from `DSMT_SWEEP_CACHE` (see module docs).
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var("DSMT_SWEEP_CACHE") {
            Ok(v) if v.eq_ignore_ascii_case("off") => CacheMode::Disabled,
            Ok(v) if !v.trim().is_empty() => CacheMode::Dir(PathBuf::from(v)),
            _ => CacheMode::Dir(PathBuf::from("target/sweep-cache")),
        }
    }
}

/// What one cache file holds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct CacheEntry {
    /// Schema version the entry was written under.
    schema: u32,
    /// The scenario that produced the results (verified on read).
    scenario: Scenario,
    /// The cached simulation results.
    results: SimResults,
}

/// Hit/miss counters for one sweep run.
#[derive(Debug, Default)]
pub struct CacheStats {
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl CacheStats {
    /// Cells answered from disk.
    #[must_use]
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cells that simulated.
    #[must_use]
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// Records a simulation that ran with no cache attached, so report
    /// counters stay meaningful for uncached sweeps too.
    pub fn count_uncached_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }
}

/// A directory of cached [`SimResults`] keyed by scenario hash.
#[derive(Debug)]
pub struct ResultCache {
    dir: PathBuf,
}

impl ResultCache {
    /// Opens (creating if needed) a cache directory.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(ResultCache { dir })
    }

    /// The cache directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn entry_path(&self, scenario: &Scenario) -> PathBuf {
        self.dir.join(format!("{}.json", scenario.cache_key_hex()))
    }

    /// Looks up a scenario; any unreadable/mismatching entry is a miss.
    #[must_use]
    pub fn lookup(&self, scenario: &Scenario) -> Option<SimResults> {
        let text = std::fs::read_to_string(self.entry_path(scenario)).ok()?;
        let entry: CacheEntry = serde::from_str(&text).ok()?;
        if entry.schema != CACHE_SCHEMA_VERSION || entry.scenario != *scenario {
            return None;
        }
        Some(entry.results)
    }

    /// Stores a scenario's results (best-effort: caching failures only cost
    /// future re-simulation, so I/O errors are swallowed after a tmp-file
    /// write + atomic rename).
    pub fn store(&self, scenario: &Scenario, results: &SimResults) {
        let entry = CacheEntry {
            schema: CACHE_SCHEMA_VERSION,
            scenario: scenario.clone(),
            results: results.clone(),
        };
        let final_path = self.entry_path(scenario);
        let tmp_path = final_path.with_extension(format!("tmp.{}", std::process::id()));
        let text = serde::to_string_pretty(&entry);
        if std::fs::write(&tmp_path, text).is_ok() {
            let _ = std::fs::rename(&tmp_path, &final_path);
        }
    }

    /// Runs a scenario through the cache: hit returns the stored results,
    /// miss executes and stores. Counters update accordingly.
    #[must_use]
    pub fn run_cached(&self, scenario: &Scenario, stats: &CacheStats) -> SimResults {
        if let Some(results) = self.lookup(scenario) {
            stats.hits.fetch_add(1, Ordering::Relaxed);
            return results;
        }
        let results = scenario.execute();
        self.store(scenario, &results);
        stats.misses.fetch_add(1, Ordering::Relaxed);
        results
    }

    /// Number of entries currently on disk (diagnostics).
    #[must_use]
    pub fn entry_count(&self) -> usize {
        std::fs::read_dir(&self.dir)
            .map(|rd| {
                rd.filter_map(Result::ok)
                    .filter(|e| e.path().extension().is_some_and(|x| x == "json"))
                    .count()
            })
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WorkloadSpec;
    use dsmt_core::SimConfig;

    fn scenario(seed: u64) -> Scenario {
        Scenario {
            config: SimConfig::paper_multithreaded(1),
            workload: WorkloadSpec::benchmark("tomcatv"),
            seed,
            budget: 4_000,
        }
    }

    fn temp_cache(tag: &str) -> ResultCache {
        let dir = std::env::temp_dir().join(format!(
            "dsmt-sweep-cache-test-{}-{tag}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        ResultCache::open(dir).expect("cache dir")
    }

    #[test]
    fn store_then_lookup_round_trips_exactly() {
        let cache = temp_cache("roundtrip");
        let s = scenario(1);
        assert!(cache.lookup(&s).is_none());
        let results = s.execute();
        cache.store(&s, &results);
        assert_eq!(cache.lookup(&s).expect("hit"), results);
        assert_eq!(cache.entry_count(), 1);
        // A different scenario misses.
        assert!(cache.lookup(&scenario(2)).is_none());
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn run_cached_counts_hits_and_misses() {
        let cache = temp_cache("counters");
        let stats = CacheStats::default();
        let s = scenario(3);
        let first = cache.run_cached(&s, &stats);
        let second = cache.run_cached(&s, &stats);
        assert_eq!(first, second);
        assert_eq!((stats.hits(), stats.misses()), (1, 1));
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn corrupt_entries_degrade_to_misses() {
        let cache = temp_cache("corrupt");
        let s = scenario(4);
        let results = s.execute();
        cache.store(&s, &results);
        let path = cache.dir().join(format!("{}.json", s.cache_key_hex()));
        std::fs::write(&path, "{ not json").expect("corrupt write");
        assert!(cache.lookup(&s).is_none());
        // run_cached repairs the entry.
        let stats = CacheStats::default();
        let repaired = cache.run_cached(&s, &stats);
        assert_eq!(repaired, results);
        assert_eq!((stats.hits(), stats.misses()), (0, 1));
        assert_eq!(cache.lookup(&s).expect("repaired"), results);
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn cache_mode_from_env_is_isolated_per_value() {
        // Not testing the env var itself (global state); just the parsing
        // contract via explicit values.
        assert_eq!(CacheMode::Disabled, CacheMode::Disabled);
        let d = CacheMode::Dir(PathBuf::from("x"));
        assert_ne!(d, CacheMode::Disabled);
    }
}
