//! The on-disk result cache, backed by the `dsmt-store` segment layout.
//!
//! Cache schema **v3**: instead of one pretty-JSON file per scenario (the
//! v2 layout, ~2 KB each), results live in a content-addressed
//! [`Store`] — checksummed, string-interned binary segments published with
//! atomic renames. A sweep buffers its misses and publishes them as one
//! segment when it finishes (or every [`FLUSH_THRESHOLD`] records,
//! whichever comes first), so a warm cache is a handful of compact files
//! instead of thousands of tiny ones: ~6x smaller on disk on the bench
//! grid, and `ls`/GC touch segment metadata instead of streaming every
//! entry.
//!
//! Entries are keyed by the scenario's stable cache key (see
//! [`Scenario::cache_key`]) and carry a second, independently derived
//! scenario hash that is re-verified on every hit — a collision on the key
//! alone degrades to a miss instead of returning the wrong cell.
//!
//! Opening a directory still holding the v2 layout **fails stop** with a
//! pointer to `dsmt sweep migrate`, which re-encodes every readable v2
//! entry into one v3 segment (see [`migrate_v2`]).
//!
//! **Visibility contract**: a cache handle reads an open-time snapshot of
//! the store. Segments another process publishes *while* a sweep is
//! running are not consulted (each engine run opens a fresh handle, so
//! sequential processes always see each other); the cost of that race is
//! re-simulating a cell another host just finished, never a wrong result.
//! The shard transport (`dsmt_shard::transport`) makes the opposite
//! choice on the same primitive: its reads go through
//! `dsmt_store::Store::refresh`, because a merger must observe other
//! hosts' publishes on a live handle.
//!
//! **Shared directory contract**: the cache keys records by the raw
//! scenario hash; the shard transport keys its outputs through the
//! `shard-output` namespace of `dsmt_store::namespaced_key`. The two key
//! sets are disjoint by construction, so one store directory — one shared
//! mount point — can serve a fleet as both its scenario cache and its
//! shard-output transport, under one LRU/GC/compaction policy. Both
//! clients re-verify identity inside every value they read (this cache
//! via the independent `verify` hash below, the transport via the grid
//! hash and shard header it embeds), so even a freak 64-bit key collision
//! degrades to a miss/re-run, never a wrong record.
//!
//! Configuration via environment:
//!
//! * `DSMT_SWEEP_CACHE=off` disables caching;
//! * `DSMT_SWEEP_CACHE=<dir>` uses `<dir>`;
//! * unset: `target/sweep-cache` under the current directory;
//! * `DSMT_SWEEP_CACHE_MAX_BYTES=<n>` caps the cache size — sweeps garbage
//!   collect least-recently-used segments down to the cap when they finish
//!   (`dsmt sweep gc` runs the same collection on demand).
//!
//! Recency for the LRU order is the segment file's modification time: a
//! cache *hit* re-touches the segment, so segments that keep answering
//! sweeps stay resident while abandoned parameter corners age out first.
//! Touching is purely an LRU affair — shadow precedence between segments
//! that repeat a key is the publish sequence number recorded in each
//! segment's header, so a touch can never promote a stale duplicate.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, RwLock};

use dsmt_core::SimResults;
use dsmt_store::{fnv1a64, CompactOutcome, GcOutcome, SegmentInfo, Store};
use serde::{Deserialize, Serialize, Value};

use crate::{Scenario, CACHE_SCHEMA_VERSION};

/// Pending misses are published as a segment once this many accumulate,
/// bounding how much a crashed sweep can lose.
pub const FLUSH_THRESHOLD: usize = 256;

/// Where (and whether) a sweep caches results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheMode {
    /// Never read or write the cache.
    Disabled,
    /// Cache under the given directory.
    Dir(PathBuf),
}

impl CacheMode {
    /// Resolves the mode from `DSMT_SWEEP_CACHE` (see module docs).
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var("DSMT_SWEEP_CACHE") {
            Ok(v) if v.eq_ignore_ascii_case("off") => CacheMode::Disabled,
            Ok(v) if !v.trim().is_empty() => CacheMode::Dir(PathBuf::from(v)),
            _ => CacheMode::Dir(PathBuf::from("target/sweep-cache")),
        }
    }

    /// The size cap from `DSMT_SWEEP_CACHE_MAX_BYTES`, if set. An
    /// unparseable value warns (on stderr) instead of silently disabling
    /// eviction — a typo'd cap must not mean "unbounded".
    #[must_use]
    pub fn max_bytes_from_env() -> Option<u64> {
        let v = std::env::var("DSMT_SWEEP_CACHE_MAX_BYTES").ok()?;
        match v.trim().parse::<u64>() {
            Ok(n) => Some(n),
            Err(_) => {
                dsmt_obs::warn!(
                    "sweep.bad_cache_cap_env",
                    value = v.as_str(),
                    hint = "expected a plain byte count, e.g. 1073741824"
                );
                None
            }
        }
    }
}

/// Hit/miss counters for one sweep run.
#[derive(Debug, Default)]
pub struct CacheStats {
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl CacheStats {
    /// Cells answered from disk.
    #[must_use]
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cells that simulated.
    #[must_use]
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// Records a simulation that ran with no cache attached, so report
    /// counters stay meaningful for uncached sweeps too.
    pub fn count_uncached_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        dsmt_obs::counter!("sweep.cells_simulated").inc();
    }
}

/// The independent verification hash stored inside every entry: a
/// different derivation than [`Scenario::cache_key`] over the same
/// canonical JSON, so returning a wrong cell requires two simultaneous
/// 64-bit collisions.
fn verify_hash(scenario: &Scenario) -> u64 {
    fnv1a64(format!("verify:{}", serde::to_string(scenario)).as_bytes())
}

/// Encodes one cache entry as a store [`Value`].
fn entry_value(scenario: &Scenario, results: &SimResults) -> Value {
    Value::Object(vec![
        ("verify".to_string(), Value::U64(verify_hash(scenario))),
        ("results".to_string(), results.to_value()),
    ])
}

/// Decodes a store entry back into results, verifying it belongs to
/// `scenario`. Any mismatch or malformation is a miss.
fn decode_entry(value: &Value, scenario: &Scenario) -> Option<SimResults> {
    let verify = value.field("verify").ok()?.as_u64().ok()?;
    if verify != verify_hash(scenario) {
        return None;
    }
    SimResults::from_value(value.field("results").ok()?).ok()
}

/// A store-backed cache of [`SimResults`] keyed by scenario hash.
///
/// Shared by reference across the sweep pool's workers: lookups take a
/// read lock on the store, misses buffer into a pending map and are
/// published as one segment on [`ResultCache::flush`] (called
/// automatically at the threshold, on GC, and on drop).
#[derive(Debug)]
pub struct ResultCache {
    store: RwLock<Store>,
    pending: Mutex<HashMap<u64, Value>>,
    /// Segments already LRU-touched through this handle. A warm sweep hits
    /// hundreds of entries living in a handful of segments; one mtime
    /// write per segment per handle carries the same recency information
    /// as one per hit, without the per-hit syscalls.
    touched: Mutex<std::collections::HashSet<String>>,
}

impl ResultCache {
    /// Opens (creating if needed) a cache directory as a v3 store.
    ///
    /// # Errors
    ///
    /// An I/O error for filesystem failures — including, fail-stop, a
    /// directory still in the v2 one-JSON-per-scenario layout (the error
    /// text points at `dsmt sweep migrate`) and schema/corruption
    /// mismatches detected by the store.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let store = Store::open(dir, CACHE_SCHEMA_VERSION)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        Ok(ResultCache {
            store: RwLock::new(store),
            pending: Mutex::new(HashMap::new()),
            touched: Mutex::new(std::collections::HashSet::new()),
        })
    }

    /// The cache directory.
    #[must_use]
    pub fn dir(&self) -> PathBuf {
        self.store.read().expect("store lock").dir().to_path_buf()
    }

    /// Looks up a scenario; any missing or mismatching entry is a miss.
    /// A hit re-touches the containing segment so the LRU eviction order
    /// (see [`ResultCache::gc`]) tracks use, not just creation.
    #[must_use]
    pub fn lookup(&self, scenario: &Scenario) -> Option<SimResults> {
        let key = scenario.cache_key();
        if let Some(value) = self.pending.lock().expect("pending lock").get(&key) {
            return decode_entry(value, scenario);
        }
        let store = self.store.read().expect("store lock");
        let results = decode_entry(store.get(key)?, scenario)?;
        if let Some(name) = store.segment_name_of(key) {
            if self
                .touched
                .lock()
                .expect("touched lock")
                .insert(name.to_string())
            {
                store.touch(key);
            }
        }
        Some(results)
    }

    /// Buffers a scenario's results for the next segment publish
    /// (best-effort: caching failures only cost future re-simulation).
    pub fn store(&self, scenario: &Scenario, results: &SimResults) {
        let key = scenario.cache_key();
        let flush_now = {
            let mut pending = self.pending.lock().expect("pending lock");
            pending.insert(key, entry_value(scenario, results));
            pending.len() >= FLUSH_THRESHOLD
        };
        if flush_now {
            self.flush();
        }
    }

    /// Publishes every buffered miss as one new segment (in ascending key
    /// order, so the segment bytes are deterministic for a given batch).
    /// I/O failures are swallowed, like v2's best-effort writes.
    pub fn flush(&self) {
        let records: Vec<(u64, Value)> = {
            let mut pending = self.pending.lock().expect("pending lock");
            let mut drained: Vec<_> = pending.drain().collect();
            drained.sort_by_key(|(k, _)| *k);
            drained
        };
        if records.is_empty() {
            return;
        }
        if let Err(e) = self.store.write().expect("store lock").publish(records) {
            dsmt_obs::warn!("sweep.cache_publish_failed", error = e.to_string());
        }
    }

    /// Runs a scenario through the cache: hit returns the stored results,
    /// miss executes and stores. Counters update accordingly.
    #[must_use]
    pub fn run_cached(&self, scenario: &Scenario, stats: &CacheStats) -> SimResults {
        if let Some(results) = self.try_hit(scenario, stats) {
            return results;
        }
        let results = scenario.execute();
        self.publish_miss(scenario, &results, stats);
        results
    }

    /// The hit half of [`run_cached`](Self::run_cached): answers `scenario`
    /// from the cache with full hit bookkeeping, or returns `None` without
    /// touching any counter. The batched-cell drive loop uses this and
    /// [`publish_miss`](Self::publish_miss) so several simulations can be
    /// interleaved between the lookup and the store.
    #[must_use]
    pub fn try_hit(&self, scenario: &Scenario, stats: &CacheStats) -> Option<SimResults> {
        let results = self.lookup(scenario)?;
        stats.hits.fetch_add(1, Ordering::Relaxed);
        dsmt_obs::counter!("sweep.cells_cache_hit").inc();
        dsmt_obs::debug!("sweep.cache.hit", key = scenario.cache_key_hex());
        Some(results)
    }

    /// The miss half of [`run_cached`](Self::run_cached): stores a result
    /// the caller simulated itself, with full miss bookkeeping.
    pub fn publish_miss(&self, scenario: &Scenario, results: &SimResults, stats: &CacheStats) {
        self.store(scenario, results);
        stats.misses.fetch_add(1, Ordering::Relaxed);
        dsmt_obs::counter!("sweep.cells_simulated").inc();
        dsmt_obs::debug!("sweep.cache.miss", key = scenario.cache_key_hex());
    }

    /// Number of distinct cached scenarios (published + pending).
    #[must_use]
    pub fn record_count(&self) -> usize {
        let published = self.store.read().expect("store lock").record_count();
        published + self.pending.lock().expect("pending lock").len()
    }

    /// Number of segment files on disk.
    #[must_use]
    pub fn segment_count(&self) -> usize {
        self.store.read().expect("store lock").segment_count()
    }

    /// Metadata for every on-disk segment, least recently used first.
    #[must_use]
    pub fn segments(&self) -> Vec<SegmentInfo> {
        self.store.read().expect("store lock").segment_infos()
    }

    /// Total bytes held by cache segments.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.store.read().expect("store lock").total_bytes()
    }

    /// Evicts least-recently-used segments until the cache fits in
    /// `max_bytes` (flushing pending entries first so they participate).
    /// Returns what was examined, evicted and kept.
    ///
    /// Eviction is best-effort and guarded by a store-level `gc` claim:
    /// concurrent collectors do not double-evict, and writers may push the
    /// cache back over the cap — the next sweep's collection catches it.
    pub fn gc(&self, max_bytes: u64) -> GcOutcome {
        self.flush();
        // Post-eviction, segments may be gone: let later hits re-touch.
        self.touched.lock().expect("touched lock").clear();
        self.store.write().expect("store lock").gc(max_bytes)
    }

    /// Folds every live entry into one fresh segment, dropping shadowed
    /// duplicates (flushes pending entries first).
    ///
    /// # Errors
    ///
    /// The store's error, as text.
    pub fn compact(&self) -> Result<CompactOutcome, String> {
        self.flush();
        self.touched.lock().expect("touched lock").clear();
        self.store
            .write()
            .expect("store lock")
            .compact()
            .map_err(|e| e.to_string())
    }
}

impl Drop for ResultCache {
    fn drop(&mut self) {
        self.flush();
    }
}

/// What a [`migrate_v2`] pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MigrateOutcome {
    /// v2 entries re-encoded into the v3 store.
    pub migrated: usize,
    /// v2 files skipped (unreadable, foreign schema, malformed).
    pub skipped: usize,
    /// Total bytes of the v2 JSON entries.
    pub bytes_before: u64,
    /// Total bytes of the v3 store segments afterwards.
    pub bytes_after: u64,
}

/// Migrates a v2 cache directory (one pretty-JSON file per scenario) into
/// the v3 store layout, in place: every readable v2 entry is re-keyed
/// under the v3 cache schema and published as one segment; the JSON files
/// are then removed. Unreadable or foreign entries are skipped and
/// counted — their cells will simply re-simulate.
///
/// The migration claims a `migrate` lock inside the directory, so two
/// racing migrators cannot interleave.
///
/// # Errors
///
/// A human-readable message on I/O failure, on a directory already (or
/// half) migrated with a different schema, or when another migrator holds
/// the claim.
pub fn migrate_v2(dir: impl Into<PathBuf>) -> Result<MigrateOutcome, String> {
    let dir = dir.into();
    let _claim = dsmt_store::LockFile::acquire(dir.join("locks"), "migrate")
        .map_err(|e| format!("{}: cannot claim migrate lock: {e}", dir.display()))?
        .ok_or_else(|| {
            format!(
                "{}: another migration holds the claim ({})",
                dir.display(),
                dsmt_store::LockFile::holder(dir.join("locks"), "migrate")
                    .unwrap_or_else(|| "unknown holder".to_string())
            )
        })?;

    let mut outcome = MigrateOutcome::default();
    let mut records: Vec<(u64, Value)> = Vec::new();
    let mut legacy_files: Vec<PathBuf> = Vec::new();
    let rd = std::fs::read_dir(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for entry in rd.filter_map(Result::ok) {
        let path = entry.path();
        // Only files named like v2 entries (`<16-hex-key>.json`) are cache
        // data; anything else — a plan.json, an exported report — is left
        // strictly alone (and does not trigger the fail-stop either, see
        // `dsmt_store::is_v2_entry_name`).
        if !path
            .file_name()
            .is_some_and(|f| dsmt_store::is_v2_entry_name(&f.to_string_lossy()))
        {
            continue;
        }
        legacy_files.push(path.clone());
        outcome.bytes_before += entry.metadata().map(|m| m.len()).unwrap_or(0);
        match parse_v2_entry(&path) {
            Some((scenario, results)) => {
                records.push((scenario.cache_key(), entry_value(&scenario, &results)));
                outcome.migrated += 1;
            }
            // A v2-named file that does not parse is a corrupt cache
            // entry: worthless, and leaving it would re-trigger the
            // fail-stop. It is counted and removed with the rest.
            None => outcome.skipped += 1,
        }
    }
    if legacy_files.is_empty() {
        return Err(format!(
            "{}: no v2 entries found (nothing to migrate)",
            dir.display()
        ));
    }
    // Remove the legacy entries *before* opening the store: their presence
    // is exactly what makes Store::open fail-stop. Losing entries on a
    // crash in this window costs re-simulation, never correctness.
    for path in &legacy_files {
        let _ = std::fs::remove_file(path);
    }
    records.sort_by_key(|(k, _)| *k);
    let mut store = Store::open(&dir, CACHE_SCHEMA_VERSION).map_err(|e| e.to_string())?;
    store.publish(records).map_err(|e| e.to_string())?;
    outcome.bytes_after = store.total_bytes();
    Ok(outcome)
}

/// Parses one v2 cache file: `{schema: 2, scenario, results}`.
fn parse_v2_entry(path: &std::path::Path) -> Option<(Scenario, SimResults)> {
    let text = std::fs::read_to_string(path).ok()?;
    let value: Value = serde::from_str(&text).ok()?;
    if value.field("schema").ok()?.as_u64().ok()? != 2 {
        return None;
    }
    let scenario = Scenario::from_value(value.field("scenario").ok()?).ok()?;
    let results = SimResults::from_value(value.field("results").ok()?).ok()?;
    Some((scenario, results))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WorkloadSpec;
    use dsmt_core::SimConfig;

    fn scenario(seed: u64) -> Scenario {
        Scenario {
            config: SimConfig::paper_multithreaded(1),
            workload: WorkloadSpec::benchmark("tomcatv"),
            seed,
            budget: 4_000,
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "dsmt-sweep-cache-test-{}-{tag}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn temp_cache(tag: &str) -> ResultCache {
        ResultCache::open(temp_dir(tag)).expect("cache dir")
    }

    #[test]
    fn store_then_lookup_round_trips_exactly() {
        let cache = temp_cache("roundtrip");
        let s = scenario(1);
        assert!(cache.lookup(&s).is_none());
        let results = s.execute();
        cache.store(&s, &results);
        // Served from the pending buffer before any flush...
        assert_eq!(cache.lookup(&s).expect("pending hit"), results);
        assert_eq!(cache.segment_count(), 0);
        cache.flush();
        // ...and from the published segment afterwards.
        assert_eq!(cache.lookup(&s).expect("hit"), results);
        assert_eq!(cache.record_count(), 1);
        assert_eq!(cache.segment_count(), 1);
        // A different scenario misses.
        assert!(cache.lookup(&scenario(2)).is_none());
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn run_cached_counts_hits_and_misses() {
        let cache = temp_cache("counters");
        let stats = CacheStats::default();
        let s = scenario(3);
        let first = cache.run_cached(&s, &stats);
        let second = cache.run_cached(&s, &stats);
        assert_eq!(first, second);
        assert_eq!((stats.hits(), stats.misses()), (1, 1));
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn drop_publishes_pending_entries() {
        let dir = temp_dir("drop-flush");
        let s = scenario(4);
        let results = s.execute();
        {
            let cache = ResultCache::open(&dir).expect("cache dir");
            cache.store(&s, &results);
        }
        let cache = ResultCache::open(&dir).expect("reopen");
        assert_eq!(cache.lookup(&s).expect("hit after drop"), results);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn v2_layout_fails_stop_with_migrate_hint() {
        let dir = temp_dir("v2-failstop");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("00112233aabbccdd.json"), "{\"schema\": 2}").unwrap();
        let err = ResultCache::open(&dir).expect_err("v2 dirs must fail stop");
        assert!(err.to_string().contains("migrate"), "got: {err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn segments_report_sizes_and_lru_order() {
        let cache = temp_cache("segments");
        for seed in 0..3 {
            let s = scenario(seed);
            cache.store(&s, &s.execute());
            cache.flush();
            // Coarse-mtime filesystems need distinct timestamps for a
            // deterministic recency check.
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        let segments = cache.segments();
        assert_eq!(segments.len(), 3);
        assert!(segments.iter().all(|e| e.bytes > 0 && e.records == 1));
        assert!(segments.windows(2).all(|w| w[0].modified <= w[1].modified));
        assert_eq!(
            cache.total_bytes(),
            segments.iter().map(|e| e.bytes).sum::<u64>()
        );
        assert_eq!(cache.record_count(), 3);
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn gc_evicts_least_recently_used_down_to_cap() {
        let cache = temp_cache("gc");
        for seed in 10..14 {
            let s = scenario(seed);
            cache.store(&s, &s.execute());
            cache.flush();
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        let segments = cache.segments();
        let total = cache.total_bytes();
        let newest = segments.last().expect("segments").clone();
        // Cap to the newest segment's size: everything older must go.
        let outcome = cache.gc(newest.bytes);
        assert_eq!(outcome.examined, 4);
        assert_eq!(outcome.evicted, 3);
        assert_eq!(outcome.kept, 1);
        assert_eq!(outcome.evicted_bytes + outcome.kept_bytes, total);
        let left = cache.segments();
        assert_eq!(left.len(), 1);
        assert_eq!(left[0].name, newest.name);
        // The survivor still hits.
        assert!(cache.lookup(&scenario(13)).is_some());
        // A generous cap evicts nothing.
        let outcome = cache.gc(u64::MAX);
        assert_eq!((outcome.evicted, outcome.kept), (0, 1));
        // A zero cap empties the cache.
        let outcome = cache.gc(0);
        assert_eq!(outcome.evicted, 1);
        assert_eq!(cache.segment_count(), 0);
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn hits_keep_segments_resident_across_gc() {
        let cache = temp_cache("lru-touch");
        for seed in 20..23 {
            let s = scenario(seed);
            cache.store(&s, &s.execute());
            cache.flush();
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        // Hit the oldest entry: its segment moves to the back of the queue.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(cache.lookup(&scenario(20)).is_some());
        let survivor_budget = cache.segments().last().unwrap().bytes * 2;
        let outcome = cache.gc(survivor_budget);
        assert_eq!(outcome.evicted, 1);
        assert!(cache.lookup(&scenario(20)).is_some(), "hit entry survives");
        assert!(cache.lookup(&scenario(21)).is_none(), "cold entry evicted");
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn compact_folds_segments_and_keeps_hits() {
        let cache = temp_cache("compact");
        let scenarios: Vec<Scenario> = (30..34).map(scenario).collect();
        for s in &scenarios {
            cache.store(s, &s.execute());
            cache.flush();
        }
        assert_eq!(cache.segment_count(), 4);
        let outcome = cache.compact().expect("compact");
        assert_eq!(outcome.records, 4);
        assert_eq!(cache.segment_count(), 1);
        for s in &scenarios {
            assert_eq!(cache.lookup(s).expect("hit"), s.execute());
        }
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn migrate_v2_reencodes_entries_in_place() {
        let dir = temp_dir("migrate");
        std::fs::create_dir_all(&dir).unwrap();
        // Build a v2 layout by hand: {schema: 2, scenario, results} pretty
        // JSON under <any-hex>.json (the v2 file name is not load-bearing;
        // keys are re-derived from the scenario).
        let scenarios: Vec<Scenario> = (40..43).map(scenario).collect();
        let mut v2_bytes = 0u64;
        for (i, s) in scenarios.iter().enumerate() {
            let entry = Value::Object(vec![
                ("schema".to_string(), Value::U64(2)),
                ("scenario".to_string(), s.to_value()),
                ("results".to_string(), s.execute().to_value()),
            ]);
            let text = serde::to_string_pretty(&entry);
            v2_bytes += text.len() as u64;
            std::fs::write(dir.join(format!("{i:016x}.json")), text).unwrap();
        }
        // Plus one corrupt v2-named entry (skipped + removed) and one
        // unrelated JSON file (never touched, never counted).
        std::fs::write(dir.join("ffffffffffffffff.json"), "{ not json").unwrap();
        std::fs::write(dir.join("plan.json"), "{\"mine\": true}").unwrap();

        let outcome = migrate_v2(&dir).expect("migrate");
        assert_eq!(outcome.migrated, 3);
        assert_eq!(outcome.skipped, 1);
        assert_eq!(
            std::fs::read_to_string(dir.join("plan.json")).unwrap(),
            "{\"mine\": true}",
            "foreign JSON survives migration untouched"
        );
        assert!(!dir.join("ffffffffffffffff.json").exists());
        assert!(outcome.bytes_before >= v2_bytes);
        assert!(
            outcome.bytes_after * 2 < outcome.bytes_before,
            "v3 ({}) should be far smaller than v2 ({})",
            outcome.bytes_after,
            outcome.bytes_before
        );
        // The migrated store opens and hits.
        let cache = ResultCache::open(&dir).expect("open migrated");
        for s in &scenarios {
            assert_eq!(cache.lookup(s).expect("migrated hit"), s.execute());
        }
        // Migrating again: nothing left to migrate.
        assert!(migrate_v2(&dir).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_mode_from_env_is_isolated_per_value() {
        // Not testing the env var itself (global state); just the parsing
        // contract via explicit values.
        assert_eq!(CacheMode::Disabled, CacheMode::Disabled);
        let d = CacheMode::Dir(PathBuf::from("x"));
        assert_ne!(d, CacheMode::Disabled);
    }
}
