//! The on-disk result cache.
//!
//! One JSON file per scenario, named by the scenario's cache key (a stable
//! hash over config, workload, seed and instruction budget — see
//! [`Scenario::cache_key`]). Each file stores the scenario alongside the
//! results, so a hit verifies the full scenario for equality: a hash
//! collision degrades to a miss instead of returning the wrong cell.
//!
//! Writes go through a temp file + rename, so a crash mid-write leaves no
//! half-entry behind. Unreadable or stale-schema entries are treated as
//! misses and overwritten.
//!
//! Configuration via environment:
//!
//! * `DSMT_SWEEP_CACHE=off` disables caching;
//! * `DSMT_SWEEP_CACHE=<dir>` uses `<dir>`;
//! * unset: `target/sweep-cache` under the current directory;
//! * `DSMT_SWEEP_CACHE_MAX_BYTES=<n>` caps the cache size — sweeps garbage
//!   collect least-recently-used entries down to the cap when they finish
//!   (`dsmt sweep gc` runs the same collection on demand).
//!
//! Recency for the LRU order is the entry file's modification time: a cache
//! *hit* re-touches the file, so entries that keep answering sweeps stay
//! resident while abandoned parameter corners age out first.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::SystemTime;

use dsmt_core::SimResults;
use serde::{Deserialize, Serialize};

use crate::{Scenario, CACHE_SCHEMA_VERSION};

/// Where (and whether) a sweep caches results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheMode {
    /// Never read or write the cache.
    Disabled,
    /// Cache under the given directory.
    Dir(PathBuf),
}

impl CacheMode {
    /// Resolves the mode from `DSMT_SWEEP_CACHE` (see module docs).
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var("DSMT_SWEEP_CACHE") {
            Ok(v) if v.eq_ignore_ascii_case("off") => CacheMode::Disabled,
            Ok(v) if !v.trim().is_empty() => CacheMode::Dir(PathBuf::from(v)),
            _ => CacheMode::Dir(PathBuf::from("target/sweep-cache")),
        }
    }

    /// The size cap from `DSMT_SWEEP_CACHE_MAX_BYTES`, if set. An
    /// unparseable value warns (on stderr) instead of silently disabling
    /// eviction — a typo'd cap must not mean "unbounded".
    #[must_use]
    pub fn max_bytes_from_env() -> Option<u64> {
        let v = std::env::var("DSMT_SWEEP_CACHE_MAX_BYTES").ok()?;
        match v.trim().parse::<u64>() {
            Ok(n) => Some(n),
            Err(_) => {
                eprintln!(
                    "warning: ignoring DSMT_SWEEP_CACHE_MAX_BYTES=`{v}` \
                     (expected a plain byte count, e.g. 1073741824)"
                );
                None
            }
        }
    }
}

/// What one cache file holds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct CacheEntry {
    /// Schema version the entry was written under.
    schema: u32,
    /// The scenario that produced the results (verified on read).
    scenario: Scenario,
    /// The cached simulation results.
    results: SimResults,
}

/// Hit/miss counters for one sweep run.
#[derive(Debug, Default)]
pub struct CacheStats {
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl CacheStats {
    /// Cells answered from disk.
    #[must_use]
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cells that simulated.
    #[must_use]
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// Records a simulation that ran with no cache attached, so report
    /// counters stay meaningful for uncached sweeps too.
    pub fn count_uncached_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }
}

/// A directory of cached [`SimResults`] keyed by scenario hash.
#[derive(Debug)]
pub struct ResultCache {
    dir: PathBuf,
}

impl ResultCache {
    /// Opens (creating if needed) a cache directory.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(ResultCache { dir })
    }

    /// The cache directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn entry_path(&self, scenario: &Scenario) -> PathBuf {
        self.dir.join(format!("{}.json", scenario.cache_key_hex()))
    }

    /// Looks up a scenario; any unreadable/mismatching entry is a miss.
    /// A hit re-touches the entry file so the LRU eviction order (see
    /// [`ResultCache::gc`]) tracks use, not just creation.
    #[must_use]
    pub fn lookup(&self, scenario: &Scenario) -> Option<SimResults> {
        let path = self.entry_path(scenario);
        let text = std::fs::read_to_string(&path).ok()?;
        let entry: CacheEntry = serde::from_str(&text).ok()?;
        if entry.schema != CACHE_SCHEMA_VERSION || entry.scenario != *scenario {
            return None;
        }
        // Best-effort LRU touch; a failure only weakens eviction ordering.
        if let Ok(f) = std::fs::OpenOptions::new().write(true).open(&path) {
            let _ = f.set_modified(SystemTime::now());
        }
        Some(entry.results)
    }

    /// Stores a scenario's results (best-effort: caching failures only cost
    /// future re-simulation, so I/O errors are swallowed after a tmp-file
    /// write + atomic rename).
    pub fn store(&self, scenario: &Scenario, results: &SimResults) {
        let entry = CacheEntry {
            schema: CACHE_SCHEMA_VERSION,
            scenario: scenario.clone(),
            results: results.clone(),
        };
        let final_path = self.entry_path(scenario);
        let tmp_path = final_path.with_extension(format!("tmp.{}", std::process::id()));
        let text = serde::to_string_pretty(&entry);
        if std::fs::write(&tmp_path, text).is_ok() {
            let _ = std::fs::rename(&tmp_path, &final_path);
        }
    }

    /// Runs a scenario through the cache: hit returns the stored results,
    /// miss executes and stores. Counters update accordingly.
    #[must_use]
    pub fn run_cached(&self, scenario: &Scenario, stats: &CacheStats) -> SimResults {
        if let Some(results) = self.lookup(scenario) {
            stats.hits.fetch_add(1, Ordering::Relaxed);
            return results;
        }
        let results = scenario.execute();
        self.store(scenario, &results);
        stats.misses.fetch_add(1, Ordering::Relaxed);
        results
    }

    /// Number of entries currently on disk (diagnostics).
    #[must_use]
    pub fn entry_count(&self) -> usize {
        self.entries().len()
    }

    /// Metadata for every entry on disk, least recently used first.
    #[must_use]
    pub fn entries(&self) -> Vec<CacheEntryInfo> {
        let Ok(rd) = std::fs::read_dir(&self.dir) else {
            return Vec::new();
        };
        let mut out: Vec<CacheEntryInfo> = rd
            .filter_map(Result::ok)
            .filter(|e| e.path().extension().is_some_and(|x| x == "json"))
            .filter_map(|e| {
                let meta = e.metadata().ok()?;
                Some(CacheEntryInfo {
                    key: e.path().file_stem()?.to_string_lossy().into_owned(),
                    bytes: meta.len(),
                    modified: meta.modified().unwrap_or(SystemTime::UNIX_EPOCH),
                })
            })
            .collect();
        // Tie-break equal mtimes (coarse filesystems) by key so the order —
        // and hence eviction — is deterministic.
        out.sort_by(|a, b| a.modified.cmp(&b.modified).then(a.key.cmp(&b.key)));
        out
    }

    /// Total bytes held by cache entries.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.entries().iter().map(|e| e.bytes).sum()
    }

    /// Evicts least-recently-used entries until the cache fits in
    /// `max_bytes`. Returns what was examined, evicted and kept.
    ///
    /// Eviction is best-effort: an entry that cannot be removed is counted
    /// as kept, and concurrent writers may push the cache back over the cap
    /// — the next sweep's collection catches it.
    pub fn gc(&self, max_bytes: u64) -> GcOutcome {
        let entries = self.entries();
        let mut outcome = GcOutcome {
            examined: entries.len(),
            ..GcOutcome::default()
        };
        let total: u64 = entries.iter().map(|e| e.bytes).sum();
        let mut excess = total.saturating_sub(max_bytes);
        for entry in entries {
            let evicted = excess > 0
                && std::fs::remove_file(self.dir.join(format!("{}.json", entry.key))).is_ok();
            if evicted {
                excess = excess.saturating_sub(entry.bytes);
                outcome.evicted += 1;
                outcome.evicted_bytes += entry.bytes;
            } else {
                outcome.kept += 1;
                outcome.kept_bytes += entry.bytes;
            }
        }
        outcome
    }
}

/// On-disk metadata of one cache entry (see [`ResultCache::entries`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheEntryInfo {
    /// The scenario cache key (hex file stem).
    pub key: String,
    /// Entry file size in bytes.
    pub bytes: u64,
    /// Last use (mtime: written on store, re-touched on hit).
    pub modified: SystemTime,
}

/// What a [`ResultCache::gc`] pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcOutcome {
    /// Entries present when the pass started.
    pub examined: usize,
    /// Entries removed.
    pub evicted: usize,
    /// Bytes freed.
    pub evicted_bytes: u64,
    /// Entries left resident.
    pub kept: usize,
    /// Bytes left resident.
    pub kept_bytes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WorkloadSpec;
    use dsmt_core::SimConfig;

    fn scenario(seed: u64) -> Scenario {
        Scenario {
            config: SimConfig::paper_multithreaded(1),
            workload: WorkloadSpec::benchmark("tomcatv"),
            seed,
            budget: 4_000,
        }
    }

    fn temp_cache(tag: &str) -> ResultCache {
        let dir = std::env::temp_dir().join(format!(
            "dsmt-sweep-cache-test-{}-{tag}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        ResultCache::open(dir).expect("cache dir")
    }

    #[test]
    fn store_then_lookup_round_trips_exactly() {
        let cache = temp_cache("roundtrip");
        let s = scenario(1);
        assert!(cache.lookup(&s).is_none());
        let results = s.execute();
        cache.store(&s, &results);
        assert_eq!(cache.lookup(&s).expect("hit"), results);
        assert_eq!(cache.entry_count(), 1);
        // A different scenario misses.
        assert!(cache.lookup(&scenario(2)).is_none());
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn run_cached_counts_hits_and_misses() {
        let cache = temp_cache("counters");
        let stats = CacheStats::default();
        let s = scenario(3);
        let first = cache.run_cached(&s, &stats);
        let second = cache.run_cached(&s, &stats);
        assert_eq!(first, second);
        assert_eq!((stats.hits(), stats.misses()), (1, 1));
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn corrupt_entries_degrade_to_misses() {
        let cache = temp_cache("corrupt");
        let s = scenario(4);
        let results = s.execute();
        cache.store(&s, &results);
        let path = cache.dir().join(format!("{}.json", s.cache_key_hex()));
        std::fs::write(&path, "{ not json").expect("corrupt write");
        assert!(cache.lookup(&s).is_none());
        // run_cached repairs the entry.
        let stats = CacheStats::default();
        let repaired = cache.run_cached(&s, &stats);
        assert_eq!(repaired, results);
        assert_eq!((stats.hits(), stats.misses()), (0, 1));
        assert_eq!(cache.lookup(&s).expect("repaired"), results);
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn entries_report_sizes_and_lru_order() {
        let cache = temp_cache("entries");
        for seed in 0..3 {
            let s = scenario(seed);
            cache.store(&s, &s.execute());
            // Coarse-mtime filesystems need distinct timestamps for a
            // deterministic recency check.
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        let entries = cache.entries();
        assert_eq!(entries.len(), 3);
        assert!(entries.iter().all(|e| e.bytes > 0));
        assert!(entries.windows(2).all(|w| w[0].modified <= w[1].modified));
        assert_eq!(
            cache.total_bytes(),
            entries.iter().map(|e| e.bytes).sum::<u64>()
        );
        // A hit on the oldest entry re-touches it to the back of the queue.
        let oldest = entries[0].key.clone();
        let hit = cache.lookup(&scenario(0)).expect("hit");
        assert_eq!(hit, scenario(0).execute());
        let after = cache.entries();
        assert_eq!(after.last().expect("entries").key, oldest);
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn gc_evicts_least_recently_used_down_to_cap() {
        let cache = temp_cache("gc");
        for seed in 10..14 {
            let s = scenario(seed);
            cache.store(&s, &s.execute());
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        let entries = cache.entries();
        let total = cache.total_bytes();
        let newest = entries.last().expect("entries").clone();
        // Cap to the newest entry's size: everything older must go.
        let outcome = cache.gc(newest.bytes);
        assert_eq!(outcome.examined, 4);
        assert_eq!(outcome.evicted, 3);
        assert_eq!(outcome.kept, 1);
        assert_eq!(outcome.evicted_bytes + outcome.kept_bytes, total);
        let left = cache.entries();
        assert_eq!(left.len(), 1);
        assert_eq!(left[0].key, newest.key);
        // The survivor still hits.
        assert!(cache.lookup(&scenario(13)).is_some());
        // A generous cap evicts nothing.
        let outcome = cache.gc(u64::MAX);
        assert_eq!((outcome.evicted, outcome.kept), (0, 1));
        // A zero cap empties the cache.
        let outcome = cache.gc(0);
        assert_eq!(outcome.evicted, 1);
        assert_eq!(cache.entry_count(), 0);
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn cache_mode_from_env_is_isolated_per_value() {
        // Not testing the env var itself (global state); just the parsing
        // contract via explicit values.
        assert_eq!(CacheMode::Disabled, CacheMode::Disabled);
        let d = CacheMode::Dir(PathBuf::from("x"));
        assert_ne!(d, CacheMode::Disabled);
    }
}
