//! Integration tests for the sweep engine's two load-bearing guarantees:
//! bit-identical records at any worker count, and a fully-cached second run
//! that simulates nothing.

use dsmt_core::SimConfig;
use dsmt_sweep::{Axis, SeedMode, SweepEngine, SweepGrid, SweepReport, WorkloadSpec};

fn figure_like_grid(seed_mode: SeedMode) -> SweepGrid {
    // A miniature Figure-4-shaped grid: threads × decoupling × latency,
    // plus a single-benchmark workload next to the SPEC mix.
    SweepGrid::new(
        "integration",
        SimConfig::paper_multithreaded(1).with_queue_scaling(true),
    )
    .with_workload(WorkloadSpec::spec_mix(3_000))
    .with_workload(WorkloadSpec::benchmark("hydro2d"))
    .with_axis(Axis::threads(&[1, 2]))
    .with_axis(Axis::decoupled(&[true, false]))
    .with_axis(Axis::l2_latencies(&[16, 64]))
    .with_budget(8_000)
    .with_seed(42)
    .with_seed_mode(seed_mode)
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("dsmt-sweep-it-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn records_are_bit_identical_at_1_4_and_8_workers() {
    for seed_mode in [SeedMode::Shared, SeedMode::PerCell] {
        let grid = figure_like_grid(seed_mode);
        let reference = SweepEngine::new(1).without_cache().run(&grid);
        assert_eq!(reference.records.len(), 16);
        for workers in [4, 8] {
            let got = SweepEngine::new(workers).without_cache().run(&grid);
            assert_eq!(
                got.records, reference.records,
                "worker count must not change results ({seed_mode:?}, {workers} workers)"
            );
        }
        // The serialized form is identical too (what export writes to disk).
        let a = serde::to_string(&reference.records);
        let b = serde::to_string(&SweepEngine::new(4).without_cache().run(&grid).records);
        assert_eq!(a, b);
    }
}

#[test]
fn second_run_is_a_full_cache_hit_with_identical_records() {
    let grid = figure_like_grid(SeedMode::Shared);
    let dir = temp_dir("roundtrip");

    let first = SweepEngine::new(4).with_cache_dir(&dir).run(&grid);
    assert_eq!(first.cache_hits, 0, "cold cache");
    assert_eq!(first.cache_misses, grid.len());

    let second = SweepEngine::new(2).with_cache_dir(&dir).run(&grid);
    assert_eq!(second.cache_misses, 0, "warm cache simulates nothing");
    assert_eq!(second.cache_hits, grid.len());
    assert!(second.fully_cached());
    assert_eq!(
        second.records, first.records,
        "cached records are bit-identical to simulated ones"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn changed_cells_miss_while_unchanged_cells_still_hit() {
    let dir = temp_dir("partial");
    let grid = figure_like_grid(SeedMode::Shared);
    let engine = SweepEngine::new(4).with_cache_dir(&dir);
    let _ = engine.run(&grid);

    // Growing one axis re-simulates only the new cells.
    let mut wider = figure_like_grid(SeedMode::Shared);
    wider.axes[2] = Axis::l2_latencies(&[16, 64, 256]);
    let report = engine.run(&wider);
    assert_eq!(report.records.len(), 24);
    assert_eq!(report.cache_hits, 16, "old cells hit");
    assert_eq!(report.cache_misses, 8, "only the L2=256 cells simulate");

    // Changing the budget invalidates everything (it is part of the key).
    let rebudgeted = figure_like_grid(SeedMode::Shared).with_budget(9_000);
    let report = engine.run(&rebudgeted);
    assert_eq!(report.cache_hits, 0);
    assert_eq!(report.cache_misses, 16);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn merged_reports_preserve_per_grid_telemetry() {
    let dir = temp_dir("merged");
    let engine = SweepEngine::new(4).with_cache_dir(&dir);
    let a = engine.run(&figure_like_grid(SeedMode::Shared));
    let b = engine.run(&figure_like_grid(SeedMode::Shared));
    let merged = SweepReport::merged("both", vec![a, b]);
    assert_eq!(merged.len(), 32);
    assert_eq!(merged.cache_hits, 16);
    assert_eq!(merged.cache_misses, 16);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn telemetry_enabled_run_keeps_records_identical_and_trace_parses() {
    let grid = figure_like_grid(SeedMode::Shared);
    let baseline = SweepEngine::new(1).without_cache().run(&grid);

    let trace = std::env::temp_dir().join(format!("dsmt-sweep-trace-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&trace);
    dsmt_obs::init_from_spec(&format!("jsonl:{}", trace.display()));
    let traced = SweepEngine::new(4)
        .without_cache()
        .with_progress()
        .run(&grid);
    dsmt_obs::init_from_spec("off");

    // Records — the sweep's identity — are untouched by full tracing,
    // live progress and metrics collection, down to the serialized bytes.
    assert_eq!(traced.records, baseline.records);
    assert_eq!(
        serde::to_string(&traced.records),
        serde::to_string(&baseline.records)
    );

    // An info-enabled run attaches a registry snapshot to the report.
    let snap = traced.metrics.as_ref().expect("snapshot attached");
    assert!(snap
        .counters
        .iter()
        .any(|(name, _)| name == "sweep.cells_simulated"));

    // Every trace line is one self-contained JSON object with the
    // envelope fields, and the run left its `sweep.done` marker.
    let text = std::fs::read_to_string(&trace).expect("trace written");
    assert!(!text.is_empty());
    for line in text.lines() {
        let v: serde::Value = serde::from_str(line)
            .unwrap_or_else(|e| panic!("unparseable trace line ({e}): {line}"));
        for key in ["ts_ms", "seq", "pid", "level", "event", "fields"] {
            assert!(v.field(key).is_ok(), "trace line missing `{key}`: {line}");
        }
    }
    assert!(text.lines().any(|l| l.contains("\"sweep.done\"")));
    let _ = std::fs::remove_file(&trace);
}
