//! End-to-end cache schema tests: a v2 fixture directory must fail-stop,
//! migrate in place, and then serve a sweep entirely from cache — and the
//! v3 store must stay ≥5x smaller on disk than the v2 JSON layout it
//! replaced (the PR's acceptance criterion, measured on the bench grid).

use dsmt_core::SimConfig;
use dsmt_sweep::{migrate_v2, Axis, ResultCache, SweepEngine, SweepGrid, WorkloadSpec};
use serde::{Serialize, Value};

/// The 12-cell grid shape shared by `bench_sweep`, the CLI `demo` grid and
/// the CI size assertion.
fn bench_grid() -> SweepGrid {
    SweepGrid::new(
        "bench",
        SimConfig::paper_multithreaded(1).with_queue_scaling(true),
    )
    .with_workload(WorkloadSpec::spec_mix(3_000))
    .with_axis(Axis::threads(&[1, 2]))
    .with_axis(Axis::decoupled(&[true, false]))
    .with_axis(Axis::l2_latencies(&[16, 64, 256]))
    .with_budget(10_000)
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("dsmt-cache-migration-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Renders a record the way the v2 cache did: one pretty-JSON
/// `{schema: 2, scenario, results}` file per scenario.
fn v2_entry_text(scenario: &dsmt_sweep::Scenario, results: &dsmt_core::SimResults) -> String {
    let entry = Value::Object(vec![
        ("schema".to_string(), Value::U64(2)),
        ("scenario".to_string(), scenario.to_value()),
        ("results".to_string(), results.to_value()),
    ]);
    serde::to_string_pretty(&entry)
}

#[test]
fn v2_fixture_dir_fails_stop_then_migrates_and_serves_the_sweep() {
    let dir = temp_dir("fixture");
    std::fs::create_dir_all(&dir).unwrap();
    // Build the v2 fixture: every bench-grid cell in the old layout.
    let grid = bench_grid();
    let mut v2_bytes = 0u64;
    for cell in grid.cells() {
        let results = cell.scenario.execute();
        let text = v2_entry_text(&cell.scenario, &results);
        v2_bytes += text.len() as u64;
        // v2 named files by the old (v2-keyed) hash; the name is not
        // load-bearing for migration, which re-keys from the scenario.
        std::fs::write(
            dir.join(format!("{}.json", cell.scenario.cache_key_hex())),
            text,
        )
        .unwrap();
    }

    // The v3 cache refuses the directory outright.
    let err = ResultCache::open(&dir).expect_err("v2 layout must fail stop");
    assert!(err.to_string().contains("migrate"), "got: {err}");

    // Migration converts in place...
    let outcome = migrate_v2(&dir).expect("migrate");
    assert_eq!(outcome.migrated, grid.len());
    assert_eq!(outcome.skipped, 0);
    assert_eq!(outcome.bytes_before, v2_bytes);

    // ...after which a sweep over the same grid simulates nothing.
    let report = SweepEngine::new(2).with_cache_dir(&dir).run(&grid);
    assert_eq!(report.cache_misses, 0, "warm migrated cache");
    assert_eq!(report.cache_hits, grid.len());
    // And the replayed records match fresh simulation bit-for-bit.
    let fresh = SweepEngine::new(1).without_cache().run(&grid);
    assert_eq!(report.records, fresh.records);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn warm_v3_store_is_at_least_5x_smaller_than_the_v2_layout() {
    let dir = temp_dir("size");
    let grid = bench_grid();
    let report = SweepEngine::new(2).with_cache_dir(&dir).run(&grid);
    assert_eq!(report.cache_misses, grid.len());

    let cache = ResultCache::open(&dir).expect("reopen");
    let v3_bytes = cache.total_bytes();
    assert!(v3_bytes > 0);
    // What the same entries would have cost in the v2 layout.
    let v2_bytes: u64 = report
        .records
        .iter()
        .map(|r| v2_entry_text(&r.scenario, &r.results).len() as u64)
        .sum();
    assert!(
        v3_bytes * 5 <= v2_bytes,
        "v3 store ({v3_bytes} bytes) must be >=5x smaller than the v2 layout ({v2_bytes} bytes)"
    );

    // The warm store then answers a second engine run completely.
    let warm = SweepEngine::new(4).with_cache_dir(&dir).run(&grid);
    assert!(warm.fully_cached());
    assert_eq!(warm.records, report.records);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_sweeps_share_one_store_without_corruption() {
    // Two engines over overlapping subsets racing into one store — the
    // shard executors' sharing pattern. Both publish; a fresh open then
    // verifies every segment and replays the union.
    let dir = temp_dir("race");
    let grid = bench_grid();
    let indices: Vec<usize> = (0..grid.len()).collect();
    std::thread::scope(|s| {
        for half in [&indices[..8], &indices[4..]] {
            let dir = &dir;
            let grid = &grid;
            s.spawn(move || {
                let _ = SweepEngine::new(2)
                    .with_cache_dir(dir)
                    .run_subset(grid, half);
            });
        }
    });
    let replay = SweepEngine::new(2).with_cache_dir(&dir).run(&grid);
    assert!(replay.fully_cached(), "union of subsets covers the grid");
    assert_eq!(
        replay.records,
        SweepEngine::new(1).without_cache().run(&grid).records
    );
    let _ = std::fs::remove_dir_all(&dir);
}
