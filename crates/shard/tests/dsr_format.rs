//! `.dsr` format guarantees: property-based round-trips, corruption
//! rejection and a golden fixture pinning the on-disk layout.

use dsmt_core::{PerceivedLatency, SimConfig, SimResults, UnitSlots};
use dsmt_mem::MemStats;
use dsmt_shard::{DsrError, DsrFile, DsrRecord, DSR_FORMAT_VERSION};
use dsmt_sweep::{fnv1a64, Axis, SweepGrid, WorkloadSpec};
use proptest::prelude::*;

/// The fixed grid every test file uses; its canonical JSON is part of the
/// golden fixture.
fn fixture_grid() -> SweepGrid {
    SweepGrid::new("golden", SimConfig::paper_multithreaded(1))
        .with_workload(WorkloadSpec::spec_mix(2_000))
        .with_axis(Axis::l2_latencies(&[1, 16]))
        .with_axis(Axis::threads(&[1, 2]))
        .with_seed(7)
        .with_budget(9_000)
}

/// Synthetic-but-plausible results; parameterized so records differ.
fn synthetic_results(salt: u64) -> SimResults {
    SimResults {
        cycles: 10_000 + salt * 977,
        instructions: 9_000 + salt * 13,
        per_thread_instructions: vec![4_500 + salt, 4_500 + salt * 12],
        ap_slots: UnitSlots {
            useful: 6_000 + salt,
            wait_memory: 1_000,
            wait_fu: 500 + salt * 3,
            wrong_path_or_idle: 250,
            other: salt,
        },
        ep_slots: UnitSlots {
            useful: 3_000,
            wait_memory: 2_000 + salt * 7,
            wait_fu: 100,
            wrong_path_or_idle: 0,
            other: 77,
        },
        perceived: PerceivedLatency {
            fp_stall_cycles: 400 + salt,
            int_stall_cycles: 30,
            fp_load_misses: 80,
            int_load_misses: 11 + salt,
        },
        mem: MemStats {
            load_hits: 2_000 + salt,
            load_misses: 150,
            store_hits: 900,
            store_misses: 60 + salt * 2,
            mshr_merges: 40,
            mshr_full_rejections: 3,
            port_rejections: 17,
            writebacks: 55,
            bus_busy_cycles: 4_321 + salt,
            bus_transfers: 205,
            bus_bytes: 13_120,
        },
        bus_utilization: 0.25 + salt as f64 / 1000.0,
        branch_accuracy: 0.875,
        loads: 2_150 + salt,
        stores: 960,
        branches: 1_200,
        mispredictions: 150 - salt.min(100),
    }
}

fn fixture_file() -> DsrFile {
    DsrFile {
        grid: fixture_grid(),
        shard_index: 1,
        shard_count: 2,
        records: vec![
            DsrRecord {
                cell: 1,
                results: synthetic_results(0),
            },
            DsrRecord {
                cell: 3,
                results: synthetic_results(5),
            },
        ],
    }
}

const GOLDEN_PATH: &str = "tests/golden/fixture.dsr";

/// Pins the byte layout. If this fails you changed the `.dsr` format (or
/// the serialized shape of `SweepGrid`/`SimResults`): bump
/// [`DSR_FORMAT_VERSION`] and regenerate the fixture with
/// `DSMT_REGEN_GOLDEN=1 cargo test -p dsmt-shard --test dsr_format`.
#[test]
fn golden_fixture_pins_the_on_disk_layout() {
    let encoded = fixture_file().encode();
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(GOLDEN_PATH);
    if std::env::var("DSMT_REGEN_GOLDEN").is_ok_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &encoded).unwrap();
        eprintln!("regenerated {} ({} bytes)", path.display(), encoded.len());
        return;
    }
    let golden = std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); regenerate with DSMT_REGEN_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        encoded, golden,
        ".dsr byte layout changed — if intentional, bump DSR_FORMAT_VERSION \
         (now {DSR_FORMAT_VERSION}) and regenerate the fixture"
    );
    // And the committed bytes still decode to the same logical file.
    assert_eq!(
        DsrFile::decode(&golden).expect("golden decodes"),
        fixture_file()
    );
}

#[test]
fn golden_header_bytes_are_as_documented() {
    let bytes = fixture_file().encode();
    assert_eq!(&bytes[0..4], b"DSR\0", "magic");
    assert_eq!(
        u32::from_le_bytes(bytes[4..8].try_into().unwrap()),
        DSR_FORMAT_VERSION,
        "version field"
    );
    // Trailing 8 bytes are the FNV-1a checksum of everything before.
    let (content, tail) = bytes.split_at(bytes.len() - 8);
    assert_eq!(
        u64::from_le_bytes(tail.try_into().unwrap()),
        fnv1a64(content),
        "trailing checksum"
    );
}

#[test]
fn every_single_byte_truncation_is_rejected() {
    let bytes = fixture_file().encode();
    for keep in 0..bytes.len() {
        assert!(
            DsrFile::decode(&bytes[..keep]).is_err(),
            "truncation to {keep}/{} bytes must be rejected",
            bytes.len()
        );
    }
}

proptest! {
    #[test]
    fn records_round_trip_bytes_exactly(
        salts in prop::collection::vec(any::<u64>(), 0..8),
        shard_index in 0usize..4,
    ) {
        let grid = fixture_grid();
        let records: Vec<DsrRecord> = salts
            .iter()
            .enumerate()
            .map(|(i, &salt)| DsrRecord {
                cell: i % grid.len(),
                results: synthetic_results(salt % 1_000_000),
            })
            .collect();
        let file = DsrFile { grid, shard_index, shard_count: 4, records };
        let bytes = file.encode();
        let back = DsrFile::decode(&bytes).expect("round-trip decode");
        prop_assert_eq!(&back, &file);
        // Canonical: re-encoding reproduces the identical bytes.
        prop_assert_eq!(back.encode(), bytes);
    }

    #[test]
    fn random_corruption_never_yields_a_wrong_file(
        pos_seed in any::<u64>(),
        flip in 1u8..=255,
    ) {
        let file = fixture_file();
        let mut bytes = file.encode();
        let pos = (pos_seed % bytes.len() as u64) as usize;
        bytes[pos] ^= flip;
        // Either rejected (overwhelmingly likely: the checksum covers every
        // byte) or — never — silently decoded to something else.
        if let Ok(decoded) = DsrFile::decode(&bytes) {
            prop_assert_eq!(decoded, file);
        }
    }

    #[test]
    fn decoding_arbitrary_bytes_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = DsrFile::decode(&bytes);
    }
}

#[test]
fn decoding_garbage_with_valid_checksum_still_fails_cleanly() {
    // A syntactically valid envelope around nonsense content exercises the
    // structural checks behind the checksum.
    let mut content = b"DSR\0".to_vec();
    content.extend_from_slice(&DSR_FORMAT_VERSION.to_le_bytes());
    content.extend_from_slice(&[0x05]); // grid_len = 5
    content.extend_from_slice(b"hello"); // not JSON
    content.extend_from_slice(&fnv1a64(b"hello").to_le_bytes());
    content.extend_from_slice(&[0x00, 0x01, 0x00]); // shard 0 of 1, 0 strings
    content.extend_from_slice(&[0x00]); // 0 records
    let mut bytes = content.clone();
    bytes.extend_from_slice(&fnv1a64(&content).to_le_bytes());
    assert!(matches!(
        DsrFile::decode(&bytes),
        Err(DsrError::Malformed(_))
    ));
}
