//! End-to-end sharding guarantees: a grid planned into shards, executed in
//! arbitrary order (optionally on a shared cache), merges into a report that
//! is **byte-identical** to a monolithic run — the subsystem's acceptance
//! criterion.

use dsmt_core::SimConfig;
use dsmt_shard::{
    merge_from, merge_shards, plan, recover, run_shard, DsrFile, MergeError, RecoverOptions,
    ShardManifest, ShardStrategy, Transport,
};
use dsmt_sweep::{Axis, SweepEngine, SweepGrid, WorkloadSpec};

fn grid() -> SweepGrid {
    SweepGrid::new("integ", SimConfig::paper_multithreaded(1))
        .with_workload(WorkloadSpec::spec_mix(1_500))
        .with_axis(Axis::threads(&[1, 2]))
        .with_axis(Axis::l2_latencies(&[1, 16, 64]))
        .with_axis(Axis::decoupled(&[true, false]))
        .with_budget(5_000)
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("dsmt-shard-integ-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The core determinism claim, for every strategy: plan 4 shards, run them
/// in arbitrary order, merge, and compare against a monolithic run —
/// logical records, canonical JSON, and packaged `.dsr` bytes.
#[test]
fn four_shards_any_order_merge_bit_identical_to_monolithic() {
    let grid = grid();
    let mono = SweepEngine::new(2).without_cache().run(&grid);
    let mono_dsr = DsrFile::from_report(&grid, &mono, 0, 1);

    for strategy in [
        ShardStrategy::Contiguous,
        ShardStrategy::Strided,
        ShardStrategy::Hashed,
    ] {
        let manifest = plan(&grid, 4, strategy).expect("plan");
        // Arbitrary execution order, mixed worker counts per shard.
        let order = [2usize, 0, 3, 1];
        let mut shard_files = Vec::new();
        for (slot, &index) in order.iter().enumerate() {
            let engine = SweepEngine::new(1 + slot % 3).without_cache();
            let run = run_shard(&manifest, index, &engine).expect("shard run");
            shard_files.push(run.dsr);
        }
        let merged = merge_shards(&manifest, &shard_files).expect("merge");

        assert_eq!(
            merged.records, mono.records,
            "strategy {strategy:?}: merged records differ from monolithic"
        );
        assert_eq!(
            serde::to_string(&merged.records),
            serde::to_string(&mono.records),
            "strategy {strategy:?}: canonical JSON differs"
        );
        let merged_dsr = DsrFile::from_report(&grid, &merged, 0, 1);
        assert_eq!(
            merged_dsr.encode(),
            mono_dsr.encode(),
            "strategy {strategy:?}: packaged .dsr bytes differ"
        );
    }
}

/// Shards running against one shared cache dedup their work: the total
/// simulated-cell count across all shards equals the grid size, and a
/// second pass over any shard is a pure replay.
#[test]
fn shards_share_and_dedup_the_result_cache() {
    let cache_dir = temp_dir("cache");
    let grid = grid();
    let manifest = plan(&grid, 4, ShardStrategy::Strided).expect("plan");

    let engine = SweepEngine::new(2).with_cache_dir(&cache_dir);
    let mut total_misses = 0;
    let mut total_hits = 0;
    for index in [3, 1, 0, 2] {
        let run = run_shard(&manifest, index, &engine).expect("shard run");
        total_misses += run.report.cache_misses;
        total_hits += run.report.cache_hits;
    }
    assert_eq!(
        total_misses,
        grid.len(),
        "every cell simulated exactly once across the 4 shards"
    );
    assert_eq!(total_hits, 0);

    // Re-running a shard replays entirely from the shared cache...
    let replay = run_shard(&manifest, 2, &engine).expect("replay");
    assert_eq!(replay.report.cache_misses, 0);
    assert_eq!(replay.report.cache_hits, manifest.shards[2].len());
    // ...and a monolithic run over the same cache simulates nothing new,
    // proving shard and monolithic cache keys agree.
    let mono = engine.run(&grid);
    assert_eq!(mono.cache_misses, 0);
    assert_eq!(mono.cache_hits, grid.len());

    let _ = std::fs::remove_dir_all(&cache_dir);
}

/// The store transport end-to-end, sharing **one** directory between the
/// sweep cache and the shard outputs (the one-directory fleet protocol):
/// shards publish into the store, the merger reads them back out via
/// refresh on a live handle, and the merged `.dsr` is byte-identical to a
/// monolithic run's.
#[test]
fn store_transport_merges_bit_identical_from_one_shared_directory() {
    let dir = temp_dir("store-transport");
    let grid = grid();
    let manifest = plan(&grid, 3, ShardStrategy::Strided).expect("plan");

    // Workers simulate through the store-as-cache AND publish their shard
    // outputs into the same store directory.
    let engine = SweepEngine::new(2).with_cache_dir(&dir);
    // The merger's handle is opened *before* any worker publishes:
    // read_verified refreshes, so it still observes everything.
    let mut merger = Transport::store(&dir).expect("merger transport");
    for index in [2, 0, 1] {
        let run = run_shard(&manifest, index, &engine).expect("shard run");
        let mut worker = Transport::store(&dir).expect("worker transport");
        worker.publish(&manifest, &run.dsr).expect("publish");
    }

    let merged = merge_from(&manifest, &mut merger).expect("merge from store");
    let mono = SweepEngine::new(1).without_cache().run(&grid);
    assert_eq!(merged.records, mono.records);
    assert_eq!(
        DsrFile::from_report(&grid, &merged, 0, 1).encode(),
        DsrFile::from_report(&grid, &mono, 0, 1).encode(),
        "store-transport merge must stay byte-identical to monolithic"
    );

    // The same directory still answers as a sweep cache: a monolithic run
    // over it simulates nothing (scenario records and shard outputs
    // coexist under disjoint key namespaces).
    let warm = engine.run(&grid);
    assert_eq!(warm.cache_misses, 0);
    assert_eq!(warm.cache_hits, grid.len());
    let _ = std::fs::remove_dir_all(&dir);
}

/// Self-healing over the store transport: a partially-run fleet is
/// completed by `recover`, and a merge before completion names the first
/// missing shard.
#[test]
fn store_transport_recovery_completes_a_partial_fleet() {
    let dir = temp_dir("store-recover");
    let grid = grid();
    let manifest = plan(&grid, 4, ShardStrategy::Contiguous).expect("plan");
    let engine = SweepEngine::new(2).with_cache_dir(&dir);

    let mut transport = Transport::store(&dir).expect("transport");
    let run = run_shard(&manifest, 1, &engine).expect("shard run");
    transport.publish(&manifest, &run.dsr).expect("publish");

    assert_eq!(
        merge_from(&manifest, &mut transport),
        Err(MergeError::MissingShard(0)),
        "merging a partial store names the missing shard"
    );
    let status = transport.status(&manifest);
    assert_eq!((status.done(), status.missing()), (1, 3));

    let outcome = recover(
        &manifest,
        &mut transport,
        &engine,
        &RecoverOptions::default(),
    )
    .expect("recover");
    assert_eq!(outcome.executed(), vec![0, 2, 3]);
    assert!(transport.status(&manifest).complete());

    let merged = merge_from(&manifest, &mut transport).expect("merge");
    let mono = SweepEngine::new(1).without_cache().run(&grid);
    assert_eq!(merged.records, mono.records);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The full file-based workflow the CLI drives: manifest and `.dsr` files
/// on disk, loaded back, merged, compared.
#[test]
fn on_disk_plan_run_merge_round_trip() {
    let work_dir = temp_dir("files");
    std::fs::create_dir_all(&work_dir).expect("work dir");
    let grid = grid();
    let manifest = plan(&grid, 2, ShardStrategy::Contiguous).expect("plan");
    let manifest_path = work_dir.join("plan.json");
    manifest.save(&manifest_path).expect("save manifest");

    let loaded = ShardManifest::load(&manifest_path).expect("load manifest");
    assert_eq!(loaded, manifest);

    let engine = SweepEngine::new(2).without_cache();
    for index in 0..loaded.num_shards() {
        let run = run_shard(&loaded, index, &engine).expect("run");
        run.dsr
            .write(work_dir.join(dsmt_shard::shard_file_name(&loaded, index)))
            .expect("write dsr");
    }

    let files: Vec<DsrFile> = (0..loaded.num_shards())
        .map(|index| {
            DsrFile::read(work_dir.join(dsmt_shard::shard_file_name(&loaded, index)))
                .expect("read dsr")
        })
        .collect();
    let merged = merge_shards(&loaded, &files).expect("merge");
    let mono = SweepEngine::new(1).without_cache().run(&grid);
    assert_eq!(merged.records, mono.records);

    let _ = std::fs::remove_dir_all(&work_dir);
}

/// The byte-identity acceptance criterion survives fully-enabled
/// telemetry: a sharded fleet traced at debug level (with heartbeats on)
/// still merges to the exact `.dsr` bytes of an untraced monolithic run.
#[test]
fn telemetry_enabled_fleet_merges_byte_identical() {
    let grid = grid();
    let mono = SweepEngine::new(2).without_cache().run(&grid);
    let mono_dsr = DsrFile::from_report(&grid, &mono, 0, 1);

    let dir = temp_dir("telemetry");
    let trace = std::env::temp_dir().join(format!("dsmt-shard-trace-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&trace);
    dsmt_obs::init_from_spec(&format!("jsonl:{}", trace.display()));

    let manifest = plan(&grid, 3, ShardStrategy::Strided).expect("plan");
    let mut transport = Transport::store(&dir).expect("store transport");
    let engine = SweepEngine::new(2).without_cache();
    let outcome = recover(
        &manifest,
        &mut transport,
        &engine,
        &RecoverOptions {
            steal_after: None,
            heartbeat: Some(std::time::Duration::from_millis(50)),
        },
    )
    .expect("traced recovery pass");
    assert_eq!(outcome.executed(), vec![0, 1, 2]);
    let merged = merge_from(&manifest, &mut transport).expect("merge");
    dsmt_obs::init_from_spec("off");

    let merged_dsr = DsrFile::from_report(&grid, &merged, 0, 1);
    assert_eq!(
        merged_dsr.encode(),
        mono_dsr.encode(),
        "telemetry must never leak into the merged .dsr bytes"
    );

    // The trace recorded the fleet protocol, one JSON object per line.
    let text = std::fs::read_to_string(&trace).expect("trace written");
    assert!(text.lines().any(|l| l.contains("\"shard.claim_acquired\"")));
    assert!(text.lines().any(|l| l.contains("\"shard.merged\"")));
    for line in text.lines() {
        let _: serde::Value = serde::from_str(line)
            .unwrap_or_else(|e| panic!("unparseable trace line ({e}): {line}"));
    }

    let _ = std::fs::remove_file(&trace);
    let _ = std::fs::remove_dir_all(&dir);
}
