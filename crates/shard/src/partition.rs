//! Deterministic grid partitioning and the shard manifest.
//!
//! A [`ShardManifest`] is the unit of coordination between hosts: it embeds
//! the full [`SweepGrid`] (so a shard runner needs no other input), the
//! grid's content hash (so a stale or hand-edited manifest is rejected
//! instead of silently running the wrong cells), and the explicit
//! cell-index assignment of every shard (so executor and merger can verify
//! coverage exactly rather than re-deriving it).

use dsmt_sweep::{fnv1a64, SweepGrid};
use serde::{Deserialize, Serialize};

/// Bumped when the manifest layout or its validation rules change; older
/// manifests are then rejected instead of being misread.
pub const MANIFEST_SCHEMA_VERSION: u32 = 1;

/// How cells are assigned to shards.
///
/// All three strategies are pure functions of the grid and the shard count —
/// planning the same grid twice yields byte-identical manifests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShardStrategy {
    /// Shard `i` owns the contiguous index range `[i*n/N, (i+1)*n/N)`.
    /// Best cache locality for grids whose expensive cells cluster.
    Contiguous,
    /// Cell `c` goes to shard `c % N`. Spreads the cost gradient of a
    /// swept axis (e.g. rising L2 latency) evenly across shards.
    Strided,
    /// Cell `c` goes to shard `hash(scenario) % N` using the scenario's
    /// stable cache key. A cell keeps its shard when the grid grows or
    /// reorders, so an incrementally extended sweep only re-runs new cells
    /// on each host.
    Hashed,
}

impl ShardStrategy {
    /// Parses a CLI name (`contiguous`, `strided`, `hashed`).
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "contiguous" => Some(ShardStrategy::Contiguous),
            "strided" => Some(ShardStrategy::Strided),
            "hashed" => Some(ShardStrategy::Hashed),
            _ => None,
        }
    }

    /// The CLI name of the strategy.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            ShardStrategy::Contiguous => "contiguous",
            ShardStrategy::Strided => "strided",
            ShardStrategy::Hashed => "hashed",
        }
    }
}

/// Why a plan could not be produced, or a manifest failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardPlanError {
    /// The grid has no cells.
    EmptyGrid,
    /// The shard count was zero.
    ZeroShards,
    /// The manifest schema version is not [`MANIFEST_SCHEMA_VERSION`].
    SchemaMismatch {
        /// Version found in the manifest.
        found: u32,
    },
    /// The stored grid hash does not match the embedded grid (stale or
    /// hand-edited manifest).
    GridHashMismatch {
        /// Hash stored in the manifest.
        stored: String,
        /// Hash recomputed from the embedded grid.
        computed: String,
    },
    /// The shard assignment does not partition the cell space exactly.
    BadPartition(String),
    /// The manifest JSON could not be parsed.
    Unparseable(String),
}

impl std::fmt::Display for ShardPlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardPlanError::EmptyGrid => write!(f, "grid has no cells to shard"),
            ShardPlanError::ZeroShards => write!(f, "shard count must be at least 1"),
            ShardPlanError::SchemaMismatch { found } => write!(
                f,
                "manifest schema v{found} does not match this build (v{MANIFEST_SCHEMA_VERSION})"
            ),
            ShardPlanError::GridHashMismatch { stored, computed } => write!(
                f,
                "stale manifest: stored grid hash {stored} != computed {computed}"
            ),
            ShardPlanError::BadPartition(why) => {
                write!(f, "shards do not partition the grid: {why}")
            }
            ShardPlanError::Unparseable(why) => write!(f, "unreadable manifest: {why}"),
        }
    }
}

impl std::error::Error for ShardPlanError {}

/// The stable content hash of a grid: FNV-1a over its canonical compact
/// JSON form (field order is declaration order in the vendored serde, so
/// the encoding is canonical by construction).
#[must_use]
pub fn grid_content_hash(grid: &SweepGrid) -> u64 {
    fnv1a64(serde::to_string(grid).as_bytes())
}

/// A complete, self-contained sharding plan for one grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardManifest {
    /// Manifest layout version ([`MANIFEST_SCHEMA_VERSION`]).
    pub schema: u32,
    /// The full grid; shard runners need no other input.
    pub grid: SweepGrid,
    /// Hex [`grid_content_hash`] of `grid` at planning time.
    pub grid_hash: String,
    /// The strategy that produced the assignment (informational; the
    /// explicit `shards` lists are authoritative).
    pub strategy: ShardStrategy,
    /// Cell indices owned by each shard, ascending within a shard.
    pub shards: Vec<Vec<usize>>,
}

/// Splits `grid` into `num_shards` shards under `strategy`.
///
/// # Example
///
/// ```
/// use dsmt_core::SimConfig;
/// use dsmt_shard::{plan, ShardStrategy};
/// use dsmt_sweep::{Axis, SweepGrid, WorkloadSpec};
///
/// let grid = SweepGrid::new("doc", SimConfig::paper_multithreaded(1))
///     .with_workload(WorkloadSpec::spec_mix(1_000))
///     .with_axis(Axis::l2_latencies(&[1, 4, 16, 64]))
///     .with_budget(2_000);
/// let manifest = plan(&grid, 3, ShardStrategy::Strided).unwrap();
/// assert_eq!(manifest.num_shards(), 3);
/// // Strided: cell c goes to shard c % 3, and the partition is exact.
/// assert_eq!(manifest.shards[0], vec![0, 3]);
/// manifest.validate().unwrap();
/// ```
///
/// # Errors
///
/// [`ShardPlanError::EmptyGrid`] or [`ShardPlanError::ZeroShards`] on
/// degenerate input. Shards may still be empty when `num_shards` exceeds
/// the cell count.
pub fn plan(
    grid: &SweepGrid,
    num_shards: usize,
    strategy: ShardStrategy,
) -> Result<ShardManifest, ShardPlanError> {
    let n = grid.len();
    if n == 0 {
        return Err(ShardPlanError::EmptyGrid);
    }
    if num_shards == 0 {
        return Err(ShardPlanError::ZeroShards);
    }
    let mut shards: Vec<Vec<usize>> = vec![Vec::new(); num_shards];
    match strategy {
        ShardStrategy::Contiguous => {
            for (s, shard) in shards.iter_mut().enumerate() {
                shard.extend(s * n / num_shards..(s + 1) * n / num_shards);
            }
        }
        ShardStrategy::Strided => {
            for c in 0..n {
                shards[c % num_shards].push(c);
            }
        }
        ShardStrategy::Hashed => {
            for cell in grid.cells() {
                let h = cell.scenario.cache_key();
                shards[(h % num_shards as u64) as usize].push(cell.index);
            }
        }
    }
    Ok(ShardManifest {
        schema: MANIFEST_SCHEMA_VERSION,
        grid: grid.clone(),
        grid_hash: format!("{:016x}", grid_content_hash(grid)),
        strategy,
        shards,
    })
}

impl ShardManifest {
    /// Number of shards in the plan.
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The store key of shard `index`'s output under the store transport:
    /// a [`dsmt_store::namespaced_key`] in the `shard-output` namespace
    /// over `(grid hash, shard index, shard count)`. Two plans over
    /// different grids (or different shard counts of one grid) can share a
    /// store directory without their outputs colliding, and re-planning
    /// the same grid the same way addresses the same outputs.
    #[must_use]
    pub fn shard_key(&self, index: usize) -> u64 {
        dsmt_store::namespaced_key(
            "shard-output",
            &format!("{}:{}/{}", self.grid_hash, index, self.num_shards()),
        )
    }

    /// The lockfile claim name guarding shard `index` under the store
    /// transport. Scoped by grid hash and shard count, like
    /// [`ShardManifest::shard_key`], so fleets working different plans out
    /// of one store directory never false-share claims.
    #[must_use]
    pub fn claim_name(&self, index: usize) -> String {
        format!("shard-{}-{index}-of-{}", self.grid_hash, self.num_shards())
    }

    /// Validates internal consistency: schema version, grid hash, and that
    /// the shards partition `0..grid.len()` exactly (every cell once).
    ///
    /// # Errors
    ///
    /// The first [`ShardPlanError`] found.
    pub fn validate(&self) -> Result<(), ShardPlanError> {
        if self.schema != MANIFEST_SCHEMA_VERSION {
            return Err(ShardPlanError::SchemaMismatch { found: self.schema });
        }
        let computed = format!("{:016x}", grid_content_hash(&self.grid));
        if self.grid_hash != computed {
            return Err(ShardPlanError::GridHashMismatch {
                stored: self.grid_hash.clone(),
                computed,
            });
        }
        if self.shards.is_empty() {
            return Err(ShardPlanError::ZeroShards);
        }
        let n = self.grid.len();
        let mut seen = vec![false; n];
        for (s, shard) in self.shards.iter().enumerate() {
            for window in shard.windows(2) {
                if window[0] >= window[1] {
                    return Err(ShardPlanError::BadPartition(format!(
                        "shard {s} is not strictly ascending"
                    )));
                }
            }
            for &c in shard {
                if c >= n {
                    return Err(ShardPlanError::BadPartition(format!(
                        "shard {s} references cell {c}, but the grid has {n} cells"
                    )));
                }
                if seen[c] {
                    return Err(ShardPlanError::BadPartition(format!(
                        "cell {c} is assigned twice"
                    )));
                }
                seen[c] = true;
            }
        }
        if let Some(missing) = seen.iter().position(|&s| !s) {
            return Err(ShardPlanError::BadPartition(format!(
                "cell {missing} is assigned to no shard"
            )));
        }
        Ok(())
    }

    /// Serializes the manifest as pretty JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde::to_string_pretty(self)
    }

    /// Parses and validates a manifest from JSON.
    ///
    /// # Errors
    ///
    /// [`ShardPlanError::Unparseable`] on malformed JSON, otherwise any
    /// [`ShardManifest::validate`] error.
    pub fn from_json(text: &str) -> Result<Self, ShardPlanError> {
        let manifest: ShardManifest =
            serde::from_str(text).map_err(|e| ShardPlanError::Unparseable(e.to_string()))?;
        manifest.validate()?;
        Ok(manifest)
    }

    /// Writes the manifest to a file, creating parent directories.
    ///
    /// # Errors
    ///
    /// The underlying I/O error.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.to_json())
    }

    /// Loads and validates a manifest from a file.
    ///
    /// # Errors
    ///
    /// I/O errors are reported as [`ShardPlanError::Unparseable`], plus any
    /// parse/validation error.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self, ShardPlanError> {
        let text = std::fs::read_to_string(path.as_ref()).map_err(|e| {
            ShardPlanError::Unparseable(format!("{}: {e}", path.as_ref().display()))
        })?;
        Self::from_json(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsmt_core::SimConfig;
    use dsmt_sweep::{Axis, WorkloadSpec};

    fn grid(cells: usize) -> SweepGrid {
        let lats: Vec<u64> = (1..=cells as u64).collect();
        SweepGrid::new("part", SimConfig::paper_multithreaded(1))
            .with_workload(WorkloadSpec::spec_mix(1_000))
            .with_axis(Axis::l2_latencies(&lats))
            .with_budget(2_000)
    }

    #[test]
    fn contiguous_partitions_in_ranges() {
        let m = plan(&grid(10), 3, ShardStrategy::Contiguous).unwrap();
        assert_eq!(
            m.shards,
            vec![vec![0, 1, 2], vec![3, 4, 5], (6..10).collect::<Vec<_>>()]
        );
        m.validate().unwrap();
    }

    #[test]
    fn strided_interleaves() {
        let m = plan(&grid(7), 3, ShardStrategy::Strided).unwrap();
        assert_eq!(m.shards, vec![vec![0, 3, 6], vec![1, 4], vec![2, 5]]);
        m.validate().unwrap();
    }

    #[test]
    fn hashed_is_deterministic_and_partitions() {
        let a = plan(&grid(12), 4, ShardStrategy::Hashed).unwrap();
        let b = plan(&grid(12), 4, ShardStrategy::Hashed).unwrap();
        assert_eq!(a, b);
        a.validate().unwrap();
        let total: usize = a.shards.iter().map(Vec::len).sum();
        assert_eq!(total, 12);
    }

    #[test]
    fn hashed_assignment_is_stable_under_grid_growth() {
        // Growing the latency axis must not move existing cells between
        // shards: each scenario's hash, not its index, decides the shard.
        let small = plan(&grid(6), 3, ShardStrategy::Hashed).unwrap();
        let large = plan(&grid(9), 3, ShardStrategy::Hashed).unwrap();
        let shard_of = |m: &ShardManifest, key: &str| -> Option<usize> {
            let cells = m.grid.cells();
            m.shards
                .iter()
                .position(|s| s.iter().any(|&c| cells[c].scenario.cache_key_hex() == key))
        };
        for cell in small.grid.cells() {
            let key = cell.scenario.cache_key_hex();
            assert_eq!(
                shard_of(&small, &key),
                shard_of(&large, &key),
                "cell {key} moved shards when the grid grew"
            );
        }
    }

    #[test]
    fn degenerate_plans_are_rejected() {
        let empty = SweepGrid::new("e", SimConfig::paper_multithreaded(1));
        assert_eq!(
            plan(&empty, 2, ShardStrategy::Contiguous),
            Err(ShardPlanError::EmptyGrid)
        );
        assert_eq!(
            plan(&grid(3), 0, ShardStrategy::Contiguous),
            Err(ShardPlanError::ZeroShards)
        );
        // More shards than cells: trailing shards are empty but valid.
        let m = plan(&grid(2), 5, ShardStrategy::Contiguous).unwrap();
        m.validate().unwrap();
        assert_eq!(m.shards.iter().filter(|s| s.is_empty()).count(), 3);
    }

    #[test]
    fn validation_catches_tampering() {
        let good = plan(&grid(6), 2, ShardStrategy::Strided).unwrap();

        let mut stale = good.clone();
        stale.grid.budget += 1; // grid changed after planning
        assert!(matches!(
            stale.validate(),
            Err(ShardPlanError::GridHashMismatch { .. })
        ));

        let mut dup = good.clone();
        dup.shards[0] = vec![0, 1, 2]; // cell 1 now appears twice
        assert!(matches!(
            dup.validate(),
            Err(ShardPlanError::BadPartition(_))
        ));

        let mut missing = good.clone();
        missing.shards[1] = vec![1, 3]; // cell 5 owned by nobody
        assert!(matches!(
            missing.validate(),
            Err(ShardPlanError::BadPartition(_))
        ));

        let mut oob = good.clone();
        oob.shards[1] = vec![1, 3, 99];
        assert!(matches!(
            oob.validate(),
            Err(ShardPlanError::BadPartition(_))
        ));

        let mut unsorted = good.clone();
        unsorted.shards[0] = vec![2, 0, 4];
        assert!(matches!(
            unsorted.validate(),
            Err(ShardPlanError::BadPartition(_))
        ));

        let mut wrong_schema = good;
        wrong_schema.schema = 99;
        assert_eq!(
            wrong_schema.validate(),
            Err(ShardPlanError::SchemaMismatch { found: 99 })
        );
    }

    #[test]
    fn manifest_round_trips_through_json_and_disk() {
        let m = plan(&grid(5), 2, ShardStrategy::Contiguous).unwrap();
        let back = ShardManifest::from_json(&m.to_json()).unwrap();
        assert_eq!(back, m);

        let path = std::env::temp_dir().join(format!(
            "dsmt-shard-manifest-test-{}.json",
            std::process::id()
        ));
        m.save(&path).unwrap();
        let loaded = ShardManifest::load(&path).unwrap();
        assert_eq!(loaded, m);
        let _ = std::fs::remove_file(&path);

        assert!(matches!(
            ShardManifest::from_json("{ nope"),
            Err(ShardPlanError::Unparseable(_))
        ));
        assert!(matches!(
            ShardManifest::load("/nonexistent/manifest.json"),
            Err(ShardPlanError::Unparseable(_))
        ));
    }

    #[test]
    fn strategy_names_round_trip() {
        for s in [
            ShardStrategy::Contiguous,
            ShardStrategy::Strided,
            ShardStrategy::Hashed,
        ] {
            assert_eq!(ShardStrategy::from_name(s.name()), Some(s));
        }
        assert_eq!(
            ShardStrategy::from_name("HASHED"),
            Some(ShardStrategy::Hashed)
        );
        assert_eq!(ShardStrategy::from_name("bogus"), None);
    }
}
