//! Reassembles shard outputs into one full report.

use dsmt_sweep::{RunRecord, SweepReport};

use crate::{DsrError, DsrFile, ShardManifest, ShardPlanError, Transport};

/// Why a set of shard files could not be merged.
#[derive(Debug, Clone, PartialEq)]
pub enum MergeError {
    /// The manifest itself is invalid or stale.
    Manifest(ShardPlanError),
    /// A shard file is structurally broken.
    Shard(DsrError),
    /// A shard file belongs to a different grid or plan shape.
    ForeignShard {
        /// Index claimed by the offending file.
        shard_index: usize,
        /// What about it disagrees with the manifest.
        why: String,
    },
    /// The same shard index was supplied more than once.
    DuplicateShard(usize),
    /// No file covers this shard index.
    MissingShard(usize),
    /// An output for this shard exists on the transport but cannot be
    /// used: a corrupt/truncated loose `.dsr` file (the decode error is
    /// carried), or a store record that fails verification. Distinct from
    /// [`MergeError::MissingShard`] so the operator repairs the right
    /// thing — `--missing` re-runs both, but a corrupt file on disk is
    /// worth knowing about.
    UnusableShard {
        /// The shard whose output is unusable.
        shard_index: usize,
        /// What is wrong with it.
        why: String,
    },
    /// A shard's records do not match its manifest cell assignment.
    CellMismatch {
        /// The offending shard.
        shard_index: usize,
        /// What about its cells disagrees.
        why: String,
    },
}

impl std::fmt::Display for MergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MergeError::Manifest(e) => write!(f, "manifest: {e}"),
            MergeError::Shard(e) => write!(f, "shard file: {e}"),
            MergeError::ForeignShard { shard_index, why } => {
                write!(f, "shard {shard_index} does not belong to this plan: {why}")
            }
            MergeError::DuplicateShard(i) => write!(f, "shard {i} supplied more than once"),
            MergeError::MissingShard(i) => write!(f, "shard {i} is missing"),
            MergeError::UnusableShard { shard_index, why } => {
                write!(f, "shard {shard_index} has an unusable output: {why}")
            }
            MergeError::CellMismatch { shard_index, why } => {
                write!(f, "shard {shard_index} cell coverage is wrong: {why}")
            }
        }
    }
}

impl std::error::Error for MergeError {}

impl From<ShardPlanError> for MergeError {
    fn from(e: ShardPlanError) -> Self {
        MergeError::Manifest(e)
    }
}

impl From<DsrError> for MergeError {
    fn from(e: DsrError) -> Self {
        MergeError::Shard(e)
    }
}

/// Merges shard `.dsr` files (any order) into the full-grid
/// [`SweepReport`].
///
/// Every shard of the manifest must be present exactly once, belong to the
/// same grid and plan shape, and cover exactly the cells the manifest
/// assigned it. The merged records are in grid order, so packaging the
/// result with [`DsrFile::from_report`] yields bytes identical to a
/// monolithic run's `.dsr` — the acceptance check the CI `shard-smoke` job
/// enforces.
///
/// Host telemetry is not stored in `.dsr` files, so the merged report's
/// hit/miss counters and wall seconds are zero; identity (records) is what
/// merging reconstructs.
///
/// # Errors
///
/// The first [`MergeError`] found, checking the manifest first, then each
/// file's provenance, then coverage.
pub fn merge_shards(
    manifest: &ShardManifest,
    shards: &[DsrFile],
) -> Result<SweepReport, MergeError> {
    manifest.validate()?;
    let num_shards = manifest.num_shards();

    let mut by_index: Vec<Option<&DsrFile>> = vec![None; num_shards];
    for file in shards {
        if file.grid != manifest.grid {
            return Err(MergeError::ForeignShard {
                shard_index: file.shard_index,
                why: "grid differs from the manifest's".to_string(),
            });
        }
        if file.shard_count != num_shards {
            return Err(MergeError::ForeignShard {
                shard_index: file.shard_index,
                why: format!(
                    "file says {} shards, manifest has {num_shards}",
                    file.shard_count
                ),
            });
        }
        let slot = by_index
            .get_mut(file.shard_index)
            .ok_or_else(|| MergeError::ForeignShard {
                shard_index: file.shard_index,
                why: format!("index out of range (manifest has {num_shards} shards)"),
            })?;
        if slot.is_some() {
            return Err(MergeError::DuplicateShard(file.shard_index));
        }
        *slot = Some(file);
    }
    if let Some(missing) = by_index.iter().position(Option::is_none) {
        return Err(MergeError::MissingShard(missing));
    }

    // Scatter records into grid order, verifying each shard covers exactly
    // its manifest assignment.
    let mut merged: Vec<Option<RunRecord>> = (0..manifest.grid.len()).map(|_| None).collect();
    for (shard_index, file) in by_index.iter().enumerate() {
        let file = file.expect("all shards present");
        let mut cells: Vec<usize> = file.records.iter().map(|r| r.cell).collect();
        cells.sort_unstable();
        let assigned = &manifest.shards[shard_index];
        if &cells != assigned {
            let why = match cells.iter().zip(assigned).find(|(got, want)| got != want) {
                Some((got, want)) => {
                    format!("file has cell {got} where the manifest assigns cell {want}")
                }
                None if cells.len() < assigned.len() => {
                    format!("file is missing cell {}", assigned[cells.len()])
                }
                None => format!("file has extra cell {}", cells[assigned.len()]),
            };
            return Err(MergeError::CellMismatch { shard_index, why });
        }
        for record in file.to_records()? {
            let cell = record.cell;
            merged[cell] = Some(record);
        }
    }

    Ok(SweepReport {
        grid: manifest.grid.name.clone(),
        records: merged
            .into_iter()
            .map(|r| r.expect("partition covers every cell"))
            .collect(),
        cache_hits: 0,
        cache_misses: 0,
        wall_secs: 0.0,
        metrics: None,
    })
}

/// Collects every shard of the plan from `transport` and merges them —
/// the transport-aware face of [`merge_shards`]. Store transports refresh
/// their handle first (via [`Transport::read_for_merge`]), so a merger
/// can run the moment `dsmt shard status` reports the store complete.
///
/// Diagnostics stay precise: an absent shard reports
/// [`MergeError::MissingShard`], while an output that *exists* but cannot
/// be used (truncated or corrupt loose file, unverifiable store record)
/// reports [`MergeError::UnusableShard`] carrying the reason. Either way,
/// `dsmt shard run --missing` heals the shard for a retry.
///
/// # Errors
///
/// [`MergeError::MissingShard`]/[`MergeError::UnusableShard`] for any
/// unavailable shard, plus everything [`merge_shards`] checks.
pub fn merge_from(
    manifest: &ShardManifest,
    transport: &mut Transport,
) -> Result<SweepReport, MergeError> {
    manifest.validate()?;
    let _span = dsmt_obs::span("shard.merge")
        .field("grid", manifest.grid.name.as_str())
        .field("shards", manifest.num_shards());
    let mut files = Vec::with_capacity(manifest.num_shards());
    for index in 0..manifest.num_shards() {
        match transport.read_for_merge(manifest, index) {
            Ok(Some(file)) => files.push(file),
            Ok(None) => return Err(MergeError::MissingShard(index)),
            Err(why) => {
                return Err(MergeError::UnusableShard {
                    shard_index: index,
                    why,
                })
            }
        }
    }
    let report = merge_shards(manifest, &files)?;
    dsmt_obs::info!(
        "shard.merged",
        grid = manifest.grid.name.as_str(),
        records = report.records.len()
    );
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{plan, run_shard, ShardStrategy};
    use dsmt_core::SimConfig;
    use dsmt_sweep::{Axis, SweepEngine, SweepGrid, WorkloadSpec};

    fn manifest() -> ShardManifest {
        let grid = SweepGrid::new("merge", SimConfig::paper_multithreaded(1))
            .with_workload(WorkloadSpec::spec_mix(1_500))
            .with_axis(Axis::l2_latencies(&[1, 16, 64]))
            .with_axis(Axis::threads(&[1, 2]))
            .with_budget(4_000);
        plan(&grid, 3, ShardStrategy::Contiguous).unwrap()
    }

    fn shard_files(m: &ShardManifest) -> Vec<DsrFile> {
        let engine = SweepEngine::new(2).without_cache();
        (0..m.num_shards())
            .map(|i| run_shard(m, i, &engine).unwrap().dsr)
            .collect()
    }

    #[test]
    fn merge_reassembles_grid_order_in_any_input_order() {
        let m = manifest();
        let mut files = shard_files(&m);
        files.rotate_left(2); // arbitrary order
        let merged = merge_shards(&m, &files).expect("merge");
        let mono = SweepEngine::new(1).without_cache().run(&m.grid);
        assert_eq!(merged.records, mono.records);
        // And byte-identical once packaged the same way.
        let merged_dsr = DsrFile::from_report(&m.grid, &merged, 0, 1);
        let mono_dsr = DsrFile::from_report(&m.grid, &mono, 0, 1);
        assert_eq!(merged_dsr.encode(), mono_dsr.encode());
    }

    #[test]
    fn missing_duplicate_and_foreign_shards_are_detected() {
        let m = manifest();
        let files = shard_files(&m);

        assert_eq!(
            merge_shards(&m, &files[..2]),
            Err(MergeError::MissingShard(2))
        );

        let mut dup = files.clone();
        dup[2] = files[0].clone();
        assert_eq!(merge_shards(&m, &dup), Err(MergeError::DuplicateShard(0)));

        let mut foreign = files.clone();
        foreign[1].grid.budget += 1;
        assert!(matches!(
            merge_shards(&m, &foreign),
            Err(MergeError::ForeignShard { shard_index: 1, .. })
        ));

        let mut wrong_count = files.clone();
        wrong_count[1].shard_count = 4;
        assert!(matches!(
            merge_shards(&m, &wrong_count),
            Err(MergeError::ForeignShard { shard_index: 1, .. })
        ));

        let mut short = files;
        short[1].records.pop();
        assert!(matches!(
            merge_shards(&m, &short),
            Err(MergeError::CellMismatch { shard_index: 1, .. })
        ));
    }

    #[test]
    fn merge_from_reports_missing_and_unusable_shards_distinctly() {
        let dir = std::env::temp_dir().join(format!("dsmt-merge-from-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let m = manifest();
        let files = shard_files(&m);
        let mut transport = Transport::loose(&dir);

        // Nothing on disk: the first absent shard is named.
        assert_eq!(
            merge_from(&m, &mut transport),
            Err(MergeError::MissingShard(0))
        );
        // Shards 0 and 2 published, shard 1 corrupt on disk: the corrupt
        // file is reported as unusable (with its decode error), not as
        // missing.
        for file in [&files[0], &files[2]] {
            transport.publish(&m, file).unwrap();
        }
        std::fs::write(dir.join(crate::shard_file_name(&m, 1)), b"junk").unwrap();
        match merge_from(&m, &mut transport) {
            Err(MergeError::UnusableShard {
                shard_index: 1,
                why,
            }) => {
                assert!(why.contains(".dsr"), "{why}");
            }
            other => panic!("expected UnusableShard for shard 1, got {other:?}"),
        }
        // Healed: the merge goes through.
        transport.publish(&m, &files[1]).unwrap();
        let merged = merge_from(&m, &mut transport).expect("merge");
        assert_eq!(merged.records.len(), m.grid.len());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_manifest_fails_before_any_file_is_touched() {
        let m = manifest();
        let files = shard_files(&m);
        let mut stale = m;
        stale.grid_hash = "0000000000000000".to_string();
        assert!(matches!(
            merge_shards(&stale, &files),
            Err(MergeError::Manifest(
                ShardPlanError::GridHashMismatch { .. }
            ))
        ));
    }
}
