//! The `.dsr` compact binary record format.
//!
//! JSON report exports are human-friendly but repeat the full scenario
//! (config + workload + seed) in every record — multi-kilobyte cells that
//! make a 10^5-cell grid impractical to ship between hosts. A `.dsr` file
//! stores the grid **once** and then only what cannot be derived from it:
//! one varint-packed `(cell index, results)` record per cell. Provenance
//! (workload, axis labels, scenario, cache key) is reconstructed from the
//! grid on read, bit-identical to what the sweep engine produced.
//!
//! ## Layout (all integers little-endian; `varint` is LEB128 as in
//! [`dsmt_isa::varint`])
//!
//! ```text
//! magic     4 bytes   b"DSR\0"
//! version   u32       DSR_FORMAT_VERSION
//! grid_len  varint    byte length of grid_json
//! grid_json bytes     canonical compact JSON of the SweepGrid
//! grid_hash u64       FNV-1a of grid_json (cross-check vs manifests)
//! shard_index varint  which shard this file covers
//! shard_count varint  total shards (1 for monolithic/merged files)
//! n_strings varint    string table: every distinct field name / string
//! strings   n ×       varint length + UTF-8 bytes, first-use order
//! n_records varint
//! records   n ×       cell varint, results (value encoding below)
//! checksum  u64       FNV-1a over every preceding byte
//! ```
//!
//! Results are encoded as a tagged tree mirroring the vendored serde
//! [`Value`]: tag byte, then `0`=null, `1`/`2`=false/true, `3`=u64 varint,
//! `4`=i64 zigzag varint, `5`=f64 as raw bits, `6`=string (varint index
//! into the string table), `7`=array (varint count + values), `8`=object
//! (varint count + (varint key index + value) pairs). Every record of a
//! file shares one object shape, so interning the field names in the table
//! reduces a record to its tag/varint payload — the per-record cost is
//! bytes of *data*, not repeated schema. Because the struct-to-`Value`
//! mapping is canonical (declaration-order fields, first-use table order,
//! shortest varints, exact float bits), encoding the same records always
//! yields the same bytes — which is what lets a merged `.dsr` be compared
//! byte-for-byte against a monolithic one, and what makes the trailing
//! checksum meaningful.
//!
//! Every decode error is fail-stop: bad magic, unknown version, checksum
//! mismatch, truncation, non-canonical varints, or a value tree that does
//! not match [`SimResults`] all reject the file rather than salvage it —
//! a corrupt shard must be re-run, not merged.
//!
//! The value encoding itself lives in [`dsmt_store::codec`] — the same
//! codec (and the same FNV checksum discipline) the sweep cache's store
//! segments use, so a record's bytes are identical wherever it is
//! persisted.

use bytes::{Buf, BufMut};
use dsmt_core::SimResults;
use dsmt_isa::varint::{get_uvarint, put_uvarint, VarintError};
use dsmt_sweep::{fnv1a64, RunRecord, SweepGrid, SweepReport};
use serde::{Deserialize, Serialize, Value};

pub use dsmt_store::codec::{get_raw_str, get_value, put_value, CodecError, StrTable};

/// Bumped on any change to the `.dsr` byte layout.
pub const DSR_FORMAT_VERSION: u32 = 1;

const MAGIC: [u8; 4] = *b"DSR\0";

/// Errors from reading or reconstructing a `.dsr` file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DsrError {
    /// The file does not start with the `.dsr` magic.
    BadMagic,
    /// The file's format version is not [`DSR_FORMAT_VERSION`].
    UnsupportedVersion(u32),
    /// The file is shorter than a minimal `.dsr`.
    Truncated,
    /// The trailing checksum does not match the content (corruption or
    /// mid-file truncation).
    ChecksumMismatch,
    /// The stored grid hash does not match the stored grid bytes.
    GridHashMismatch,
    /// Structurally invalid content (bad varint, bad tag, bad UTF-8,
    /// header inconsistency, value tree not matching the expected shape).
    Malformed(String),
    /// An I/O error, carried as text so the error stays comparable.
    Io(String),
}

impl std::fmt::Display for DsrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DsrError::BadMagic => write!(f, "not a .dsr file (bad magic)"),
            DsrError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported .dsr version {v} (this build reads v{DSR_FORMAT_VERSION})"
                )
            }
            DsrError::Truncated => write!(f, ".dsr file truncated"),
            DsrError::ChecksumMismatch => write!(f, ".dsr checksum mismatch (corrupt file)"),
            DsrError::GridHashMismatch => write!(f, ".dsr grid hash mismatch (corrupt header)"),
            DsrError::Malformed(why) => write!(f, "malformed .dsr: {why}"),
            DsrError::Io(why) => write!(f, ".dsr i/o error: {why}"),
        }
    }
}

impl std::error::Error for DsrError {}

impl From<VarintError> for DsrError {
    fn from(e: VarintError) -> Self {
        match e {
            VarintError::Truncated => DsrError::Truncated,
            VarintError::Malformed => DsrError::Malformed("non-canonical varint".to_string()),
        }
    }
}

impl From<CodecError> for DsrError {
    fn from(e: CodecError) -> Self {
        match e {
            CodecError::Truncated => DsrError::Truncated,
            CodecError::Malformed(why) => DsrError::Malformed(why),
        }
    }
}

/// One record: a grid cell index and its simulation results.
#[derive(Debug, Clone, PartialEq)]
pub struct DsrRecord {
    /// Cell index in grid order.
    pub cell: usize,
    /// The deterministic simulation outcome for that cell.
    pub results: SimResults,
}

/// An in-memory `.dsr` file: the grid plus the records it explains.
#[derive(Debug, Clone, PartialEq)]
pub struct DsrFile {
    /// The grid every record belongs to.
    pub grid: SweepGrid,
    /// Which shard of the grid this file covers.
    pub shard_index: usize,
    /// Total shards in the plan (1 for monolithic or merged files).
    pub shard_count: usize,
    /// The records, in the order they were written.
    pub records: Vec<DsrRecord>,
}

impl DsrFile {
    /// Packages a sweep report as a `.dsr` file. Only the identity part of
    /// each record (cell index + results) is stored; host telemetry
    /// (`perf`, wall times, hit/miss counters) is deliberately dropped so
    /// the bytes depend on nothing but the simulation outcome.
    #[must_use]
    pub fn from_report(
        grid: &SweepGrid,
        report: &SweepReport,
        shard_index: usize,
        shard_count: usize,
    ) -> Self {
        DsrFile {
            grid: grid.clone(),
            shard_index,
            shard_count,
            records: report
                .records
                .iter()
                .map(|r| DsrRecord {
                    cell: r.cell,
                    results: r.results.clone(),
                })
                .collect(),
        }
    }

    /// Serializes the file to its byte form.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let grid_json = serde::to_string(&self.grid);
        let values: Vec<Value> = self.records.iter().map(|r| r.results.to_value()).collect();
        let mut table = StrTable::default();
        for value in &values {
            table.collect(value);
        }

        let mut buf = Vec::with_capacity(grid_json.len() + 64 * self.records.len() + 64);
        buf.put_slice(&MAGIC);
        buf.put_slice(&DSR_FORMAT_VERSION.to_le_bytes());
        put_uvarint(&mut buf, grid_json.len() as u64);
        buf.put_slice(grid_json.as_bytes());
        buf.put_u64_le(fnv1a64(grid_json.as_bytes()));
        put_uvarint(&mut buf, self.shard_index as u64);
        put_uvarint(&mut buf, self.shard_count as u64);
        put_uvarint(&mut buf, table.strings().len() as u64);
        for s in table.strings() {
            put_uvarint(&mut buf, s.len() as u64);
            buf.put_slice(s.as_bytes());
        }
        put_uvarint(&mut buf, self.records.len() as u64);
        for (record, value) in self.records.iter().zip(&values) {
            put_uvarint(&mut buf, record.cell as u64);
            put_value(&mut buf, value, &table);
        }
        buf.put_u64_le(fnv1a64(&buf));
        buf
    }

    /// Parses and fully verifies a `.dsr` byte image.
    ///
    /// # Errors
    ///
    /// Any [`DsrError`]; no partially decoded file is ever returned.
    pub fn decode(bytes: &[u8]) -> Result<Self, DsrError> {
        // Fixed header + empty grid + hash + three varints + checksum.
        if bytes.len() < MAGIC.len() + 4 + 1 + 8 + 3 + 8 {
            return Err(DsrError::Truncated);
        }
        let (content, tail) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(tail.try_into().expect("8-byte tail"));
        if fnv1a64(content) != stored {
            return Err(DsrError::ChecksumMismatch);
        }

        let mut buf = content;
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if magic != MAGIC {
            return Err(DsrError::BadMagic);
        }
        let mut version = [0u8; 4];
        buf.copy_to_slice(&mut version);
        let version = u32::from_le_bytes(version);
        if version != DSR_FORMAT_VERSION {
            return Err(DsrError::UnsupportedVersion(version));
        }

        let grid_len = usize::try_from(get_uvarint(&mut buf)?)
            .map_err(|_| DsrError::Malformed("grid length overflow".to_string()))?;
        if buf.remaining() < grid_len {
            return Err(DsrError::Truncated);
        }
        let grid_json = std::str::from_utf8(&buf[..grid_len])
            .map_err(|_| DsrError::Malformed("grid JSON is not UTF-8".to_string()))?
            .to_string();
        buf.advance(grid_len);
        if buf.remaining() < 8 {
            return Err(DsrError::Truncated);
        }
        if buf.get_u64_le() != fnv1a64(grid_json.as_bytes()) {
            return Err(DsrError::GridHashMismatch);
        }
        let grid: SweepGrid = serde::from_str(&grid_json)
            .map_err(|e| DsrError::Malformed(format!("grid JSON: {e}")))?;

        let shard_index = usize::try_from(get_uvarint(&mut buf)?)
            .map_err(|_| DsrError::Malformed("shard index overflow".to_string()))?;
        let shard_count = usize::try_from(get_uvarint(&mut buf)?)
            .map_err(|_| DsrError::Malformed("shard count overflow".to_string()))?;
        if shard_count == 0 || shard_index >= shard_count {
            return Err(DsrError::Malformed(format!(
                "shard {shard_index} of {shard_count} is inconsistent"
            )));
        }
        let n_strings = get_uvarint(&mut buf)?;
        let mut strings = Vec::new();
        for _ in 0..n_strings {
            strings.push(get_raw_str(&mut buf)?);
        }
        let n_records = get_uvarint(&mut buf)?;
        let mut records = Vec::new();
        for _ in 0..n_records {
            let cell = usize::try_from(get_uvarint(&mut buf)?)
                .map_err(|_| DsrError::Malformed("cell index overflow".to_string()))?;
            let value = get_value(&mut buf, &strings)?;
            let results = SimResults::from_value(&value)
                .map_err(|e| DsrError::Malformed(format!("results: {e}")))?;
            records.push(DsrRecord { cell, results });
        }
        if buf.has_remaining() {
            return Err(DsrError::Malformed(format!(
                "{} trailing bytes after the last record",
                buf.remaining()
            )));
        }
        Ok(DsrFile {
            grid,
            shard_index,
            shard_count,
            records,
        })
    }

    /// Writes the encoded file atomically (temp file + rename, parent
    /// directories created), so concurrent writers — e.g. two `--missing`
    /// recoverers racing past a stale claim — can never interleave bytes.
    ///
    /// # Errors
    ///
    /// [`DsrError::Io`] on filesystem failure.
    pub fn write(&self, path: impl AsRef<std::path::Path>) -> Result<(), DsrError> {
        let path = path.as_ref();
        dsmt_store::atomic_write(path, &self.encode())
            .map_err(|e| DsrError::Io(format!("{}: {e}", path.display())))
    }

    /// Reads and verifies a `.dsr` file from disk.
    ///
    /// # Errors
    ///
    /// [`DsrError::Io`] on filesystem failure, otherwise any decode error.
    pub fn read(path: impl AsRef<std::path::Path>) -> Result<Self, DsrError> {
        let path = path.as_ref();
        let bytes =
            std::fs::read(path).map_err(|e| DsrError::Io(format!("{}: {e}", path.display())))?;
        Self::decode(&bytes)
    }

    /// Reconstructs full [`RunRecord`]s (scenario, labels, cache key) by
    /// joining the stored results back onto the grid.
    ///
    /// # Errors
    ///
    /// [`DsrError::Malformed`] if a record references a cell outside the
    /// grid.
    pub fn to_records(&self) -> Result<Vec<RunRecord>, DsrError> {
        let cells = self.grid.cells();
        self.records
            .iter()
            .map(|record| {
                let cell = cells.get(record.cell).ok_or_else(|| {
                    DsrError::Malformed(format!(
                        "record references cell {} but the grid has {} cells",
                        record.cell,
                        cells.len()
                    ))
                })?;
                Ok(RunRecord {
                    cell: cell.index,
                    grid: self.grid.name.clone(),
                    workload: cell.workload_label.clone(),
                    labels: cell.labels.clone(),
                    key: cell.scenario.cache_key_hex(),
                    scenario: cell.scenario.clone(),
                    results: record.results.clone(),
                    perf: zero_perf(),
                })
            })
            .collect()
    }

    /// Reconstructs a [`SweepReport`] from the file. Host telemetry
    /// (hit/miss counters, wall seconds) is not stored in `.dsr`, so those
    /// fields are zero.
    ///
    /// # Errors
    ///
    /// As for [`DsrFile::to_records`].
    pub fn to_report(&self) -> Result<SweepReport, DsrError> {
        Ok(SweepReport {
            grid: self.grid.name.clone(),
            records: self.to_records()?,
            cache_hits: 0,
            cache_misses: 0,
            wall_secs: 0.0,
            metrics: None,
        })
    }
}

/// The all-zero telemetry used for records replayed from disk (matches the
/// canonical-JSON deserialization behaviour of `dsmt-sweep`).
fn zero_perf() -> dsmt_sweep::CellPerf {
    dsmt_sweep::CellPerf {
        wall_secs: 0.0,
        instructions_per_sec: 0.0,
        sim_cycles_per_sec: 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsmt_core::SimConfig;
    use dsmt_sweep::{Axis, SweepEngine, WorkloadSpec};

    fn small_grid() -> SweepGrid {
        SweepGrid::new("dsr", SimConfig::paper_multithreaded(1))
            .with_workload(WorkloadSpec::benchmark("swim"))
            .with_axis(Axis::l2_latencies(&[1, 16]))
            .with_budget(4_000)
    }

    fn small_file() -> DsrFile {
        let grid = small_grid();
        let report = SweepEngine::new(1).without_cache().run(&grid);
        DsrFile::from_report(&grid, &report, 0, 1)
    }

    #[test]
    fn encode_decode_round_trips() {
        let file = small_file();
        let bytes = file.encode();
        let back = DsrFile::decode(&bytes).expect("decode");
        assert_eq!(back, file);
        // Encoding is deterministic (checksummed formats require it).
        assert_eq!(bytes, back.encode());
    }

    #[test]
    fn records_reconstruct_with_full_provenance() {
        let grid = small_grid();
        let report = SweepEngine::new(1).without_cache().run(&grid);
        let file = DsrFile::from_report(&grid, &report, 0, 1);
        let records = file.to_records().expect("records");
        assert_eq!(records, report.records);
        // Equality ignores perf, but the canonical JSON must match too.
        assert_eq!(
            serde::to_string(&records),
            serde::to_string(&report.records)
        );
        let rebuilt = file.to_report().expect("report");
        assert_eq!(rebuilt.records, report.records);
        assert_eq!(rebuilt.grid, "dsr");
    }

    #[test]
    fn header_fields_are_checked() {
        let file = small_file();
        let bytes = file.encode();

        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        // The checksum still matches only if we recompute it; a plain flip
        // fails the checksum first (corruption is corruption).
        assert_eq!(DsrFile::decode(&bad_magic), Err(DsrError::ChecksumMismatch));
        // With a fixed-up checksum, the magic check reports precisely.
        let fixed = refresh_checksum(bad_magic);
        assert_eq!(DsrFile::decode(&fixed), Err(DsrError::BadMagic));

        let mut bad_version = bytes.clone();
        bad_version[4] = 0xff;
        let fixed = refresh_checksum(bad_version);
        assert_eq!(
            DsrFile::decode(&fixed),
            Err(DsrError::UnsupportedVersion(0x0000_00ff))
        );

        assert_eq!(DsrFile::decode(&[]), Err(DsrError::Truncated));
        assert_eq!(DsrFile::decode(&bytes[..20]), Err(DsrError::Truncated));
    }

    fn refresh_checksum(mut bytes: Vec<u8>) -> Vec<u8> {
        let content_len = bytes.len() - 8;
        let sum = fnv1a64(&bytes[..content_len]);
        bytes[content_len..].copy_from_slice(&sum.to_le_bytes());
        bytes
    }

    #[test]
    fn corruption_and_truncation_are_rejected() {
        let bytes = small_file().encode();
        // Flip one bit anywhere: the checksum catches it.
        for pos in [8, bytes.len() / 2, bytes.len() - 9] {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= 0x40;
            assert!(
                DsrFile::decode(&corrupt).is_err(),
                "bit flip at {pos} must be rejected"
            );
        }
        // Drop trailing bytes: rejected at every length.
        for keep in [bytes.len() - 1, bytes.len() - 8, 30] {
            assert!(
                DsrFile::decode(&bytes[..keep]).is_err(),
                "truncation to {keep} bytes must be rejected"
            );
        }
        // Appending bytes invalidates the checksum too.
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(DsrFile::decode(&padded).is_err());
    }

    #[test]
    fn shard_header_consistency_is_enforced() {
        let mut file = small_file();
        file.shard_index = 2;
        file.shard_count = 2;
        // encode() writes what it is given; decode() rejects it.
        assert!(matches!(
            DsrFile::decode(&file.encode()),
            Err(DsrError::Malformed(_))
        ));
    }

    #[test]
    fn out_of_range_cells_fail_reconstruction() {
        let mut file = small_file();
        file.records[0].cell = 99;
        let decoded = DsrFile::decode(&file.encode()).expect("structurally valid");
        assert!(matches!(decoded.to_records(), Err(DsrError::Malformed(_))));
    }

    #[test]
    fn file_round_trips_on_disk() {
        let file = small_file();
        let path = std::env::temp_dir().join(format!(
            "dsmt-dsr-test-{}/nested/out.dsr",
            std::process::id()
        ));
        file.write(&path).expect("write");
        let back = DsrFile::read(&path).expect("read");
        assert_eq!(back, file);
        assert!(matches!(
            DsrFile::read("/nonexistent/x.dsr"),
            Err(DsrError::Io(_))
        ));
        let _ = std::fs::remove_dir_all(path.parent().unwrap().parent().unwrap());
    }

    // The value-codec edge-case and garbage-rejection tests moved to
    // `dsmt_store::codec` with the codec itself; the golden fixture in
    // crates/shard/tests/golden pins that the relocated codec still
    // produces the exact `.dsr` bytes.

    #[test]
    fn dsr_is_at_least_5x_smaller_than_the_json_export_for_the_bench_grid() {
        // The same 12-cell grid shape as `bench_sweep` (the acceptance
        // criterion's reference grid). The one-time grid header amortizes
        // over the cells; per-record cost is varint data, not schema.
        let grid = SweepGrid::new(
            "bench",
            SimConfig::paper_multithreaded(1).with_queue_scaling(true),
        )
        .with_workload(WorkloadSpec::spec_mix(3_000))
        .with_axis(Axis::threads(&[1, 2]))
        .with_axis(Axis::decoupled(&[true, false]))
        .with_axis(Axis::l2_latencies(&[16, 64, 256]))
        .with_budget(10_000);
        let report = SweepEngine::new(2).without_cache().run(&grid);
        let dsr = DsrFile::from_report(&grid, &report, 0, 1).encode();
        let json = dsmt_sweep::export::to_json(&report);
        assert!(
            dsr.len() * 5 <= json.len(),
            ".dsr ({} bytes) should be ≥5x smaller than JSON ({} bytes)",
            dsr.len(),
            json.len()
        );
    }
}
