//! # dsmt-shard
//!
//! Turns `dsmt-sweep` into a **distributable system**: a sweep grid is split
//! into deterministic shards that any number of hosts can execute
//! independently — sharing nothing but a filesystem — and the shard outputs
//! reassemble into a report that is bit-identical to a monolithic run.
//!
//! The subsystem has four layers (the `dsmt` CLI at the workspace root
//! drives all of them):
//!
//! * [`partition`] — a deterministic partitioner. [`plan`] splits any
//!   [`SweepGrid`](dsmt_sweep::SweepGrid) into `N` shards (contiguous,
//!   strided or stable-hash [`ShardStrategy`]) and emits a JSON
//!   [`ShardManifest`] carrying the grid *and* its content hash, so a
//!   manifest that no longer matches its grid is rejected instead of
//!   silently mis-partitioning (deterministic work distribution in the
//!   spirit of the Bobpp framework, arXiv:1406.2844).
//! * [`dsr`] — a compact binary record format. A [`DsrFile`] stores the
//!   grid once (its canonical JSON, hash-checked) and then one
//!   varint-packed record per cell — provenance is *derived*, not
//!   duplicated, so `.dsr` files are typically an order of magnitude
//!   smaller than the JSON export. A trailing FNV-1a checksum plus the
//!   canonical-varint rule make corruption and truncation detectable.
//! * [`executor`] — [`run_shard`] executes one manifest shard against the
//!   shared content-addressed result cache and packages the outcome as a
//!   `.dsr` file; [`recover`] heals a fleet by claiming and re-running
//!   every shard without a verified output, stealing claims whose holder
//!   died ([`RecoverOptions::steal_after`]).
//! * [`transport`] — where shard outputs travel: loose `.dsr` files
//!   beside the plan, or published **into the result store** keyed by
//!   `(grid content hash, shard index)` — one shared directory carrying
//!   scenario cache and shard outputs alike, with checksums, atomic
//!   publishes and LRU GC for free. [`Transport`] is the switch;
//!   `dsmt shard status` reports done/claimed/missing per shard.
//! * [`merge`] — [`merge_shards`] (and the transport-aware
//!   [`merge_from`]) reassembles shard outputs into a full
//!   [`SweepReport`](dsmt_sweep::SweepReport), detecting missing,
//!   duplicate, foreign and incomplete shards. Merged records are in grid
//!   order, so the merged `.dsr` is byte-identical to one produced by a
//!   monolithic run.
//!
//! ## The multi-host workflow (store transport)
//!
//! ```text
//! host 0:  dsmt shard plan demo --shards 4 --out plan.json
//! host i:  dsmt shard run plan.json --index i --store /mnt/fleet/store
//! any:     dsmt shard status plan.json --store /mnt/fleet/store
//! any:     dsmt shard run plan.json --missing --steal-after 600 --store /mnt/fleet/store
//! host 0:  dsmt shard merge plan.json --store /mnt/fleet/store --out report.json
//! ```
//!
//! ## Example (in-process)
//!
//! ```
//! use dsmt_core::SimConfig;
//! use dsmt_shard::{merge_shards, plan, run_shard, ShardStrategy};
//! use dsmt_sweep::{Axis, SweepEngine, SweepGrid, WorkloadSpec};
//!
//! let grid = SweepGrid::new("demo", SimConfig::paper_multithreaded(1))
//!     .with_workload(WorkloadSpec::spec_mix(2_000))
//!     .with_axis(Axis::l2_latencies(&[1, 16]))
//!     .with_budget(5_000);
//! let manifest = plan(&grid, 2, ShardStrategy::Contiguous).unwrap();
//!
//! let engine = SweepEngine::new(1).without_cache();
//! let shard0 = run_shard(&manifest, 0, &engine).unwrap();
//! let shard1 = run_shard(&manifest, 1, &engine).unwrap();
//!
//! let merged = merge_shards(&manifest, &[shard1.dsr, shard0.dsr]).unwrap();
//! assert_eq!(merged.records, engine.run(&grid).records);
//! ```

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod dsr;
pub mod executor;
pub mod merge;
pub mod partition;
pub mod transport;

pub use dsr::{DsrError, DsrFile, DsrRecord, DSR_FORMAT_VERSION};
pub use executor::{
    recover, run_missing, run_shard, shard_file_name, MissingRun, RecoverOptions, ShardDisposition,
    ShardRun, StealRecord, DEFAULT_HEARTBEAT,
};
pub use merge::{merge_from, merge_shards, MergeError};
pub use partition::{
    grid_content_hash, plan, ShardManifest, ShardPlanError, ShardStrategy, MANIFEST_SCHEMA_VERSION,
};
pub use transport::{
    ShardState, ShardStatus, ShardStore, StatusReport, Transport, SHARD_VALUE_SCHEMA,
};
