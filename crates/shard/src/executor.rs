//! Runs one shard of a manifest and packages the result.

use std::path::Path;

use dsmt_store::LockFile;
use dsmt_sweep::{SweepEngine, SweepReport};

use crate::{DsrFile, ShardManifest, ShardPlanError};

/// The outcome of executing one shard: the partial report (with live cache
/// telemetry) and its `.dsr` packaging (identity only, ready to ship).
#[derive(Debug, Clone)]
pub struct ShardRun {
    /// Which shard was executed.
    pub shard_index: usize,
    /// The partial sweep report (records carry grid-order cell indices).
    pub report: SweepReport,
    /// The same records as a writable `.dsr` file.
    pub dsr: DsrFile,
}

/// The conventional file name for a shard's `.dsr` output:
/// `<grid>.shard-<i>-of-<n>.dsr`.
#[must_use]
pub fn shard_file_name(manifest: &ShardManifest, shard_index: usize) -> String {
    format!(
        "{}.shard-{shard_index}-of-{}.dsr",
        manifest.grid.name,
        manifest.num_shards()
    )
}

/// Validates the manifest and executes its `shard_index`-th shard on
/// `engine`. With a shared cache directory, shards running on different
/// hosts dedup overlapping scenarios automatically — the cache key is a
/// pure function of the scenario.
///
/// # Errors
///
/// Any manifest validation error, or [`ShardPlanError::BadPartition`] if
/// `shard_index` is out of range.
///
/// # Panics
///
/// As for [`SweepEngine::run`] (invalid cell configuration, unusable cache
/// directory) — grid construction bugs, not runtime conditions.
pub fn run_shard(
    manifest: &ShardManifest,
    shard_index: usize,
    engine: &SweepEngine,
) -> Result<ShardRun, ShardPlanError> {
    manifest.validate()?;
    let cells = manifest.shards.get(shard_index).ok_or_else(|| {
        ShardPlanError::BadPartition(format!(
            "shard index {shard_index} out of range (plan has {} shards)",
            manifest.num_shards()
        ))
    })?;
    let report = engine.run_subset(&manifest.grid, cells);
    let dsr = DsrFile::from_report(&manifest.grid, &report, shard_index, manifest.num_shards());
    Ok(ShardRun {
        shard_index,
        report,
        dsr,
    })
}

/// How one shard fared during a [`run_missing`] recovery pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardDisposition {
    /// A verified output already existed; nothing to do.
    AlreadyDone,
    /// Another worker holds the claim; left for them.
    ClaimedElsewhere,
    /// This pass claimed, executed and published the shard (an unreadable
    /// or corrupt existing output counts: it is re-run and overwritten).
    Executed,
}

/// The outcome of a [`run_missing`] pass: one disposition per shard, in
/// shard order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MissingRun {
    /// Disposition per shard index.
    pub dispositions: Vec<ShardDisposition>,
}

impl MissingRun {
    /// Shard indices this pass executed.
    #[must_use]
    pub fn executed(&self) -> Vec<usize> {
        self.indices(ShardDisposition::Executed)
    }

    /// Shard indices with verified pre-existing outputs.
    #[must_use]
    pub fn already_done(&self) -> Vec<usize> {
        self.indices(ShardDisposition::AlreadyDone)
    }

    /// Shard indices another worker currently holds.
    #[must_use]
    pub fn claimed_elsewhere(&self) -> Vec<usize> {
        self.indices(ShardDisposition::ClaimedElsewhere)
    }

    /// Whether every shard now has a verified output (nothing was left to
    /// a concurrent claimant).
    #[must_use]
    pub fn complete(&self) -> bool {
        self.claimed_elsewhere().is_empty()
    }

    fn indices(&self, want: ShardDisposition) -> Vec<usize> {
        self.dispositions
            .iter()
            .enumerate()
            .filter(|(_, &d)| d == want)
            .map(|(i, _)| i)
            .collect()
    }
}

/// Executes every shard of `manifest` that has no verified output under
/// `dir` yet, claiming each through an `O_EXCL` lockfile in `dir/locks`
/// first — the self-healing path for fleets: any number of recovery
/// workers can run this concurrently (or after hosts died mid-run) and
/// each missing shard is executed exactly once.
///
/// A shard output that exists but fails verification (truncated, corrupt,
/// foreign grid) is treated as missing: it is re-run and atomically
/// overwritten. Claims release when this pass finishes, so a worker that
/// died *holding* a claim only blocks until its lockfile is removed —
/// [`LockFile::holder`] names the owner for that call.
///
/// # Errors
///
/// Any manifest validation error; execution itself panics only for grid
/// construction bugs, as [`run_shard`] does.
pub fn run_missing(
    manifest: &ShardManifest,
    dir: impl AsRef<Path>,
    engine: &SweepEngine,
) -> Result<MissingRun, ShardPlanError> {
    manifest.validate()?;
    let dir = dir.as_ref();
    let locks = dir.join("locks");
    let mut dispositions = Vec::with_capacity(manifest.num_shards());
    for index in 0..manifest.num_shards() {
        let name = shard_file_name(manifest, index);
        let path = dir.join(&name);
        if shard_output_ok(&path, manifest, index) {
            dispositions.push(ShardDisposition::AlreadyDone);
            continue;
        }
        let Ok(Some(_claim)) = LockFile::acquire(&locks, &name) else {
            dispositions.push(ShardDisposition::ClaimedElsewhere);
            continue;
        };
        // Double-check under the claim: another worker may have finished
        // between the probe and the acquire.
        if shard_output_ok(&path, manifest, index) {
            dispositions.push(ShardDisposition::AlreadyDone);
            continue;
        }
        let run = run_shard(manifest, index, engine)?;
        run.dsr.write(&path).map_err(|e| {
            ShardPlanError::BadPartition(format!("cannot publish shard {index}: {e}"))
        })?;
        dispositions.push(ShardDisposition::Executed);
    }
    Ok(MissingRun { dispositions })
}

/// Whether `path` holds a verified output for shard `index` of this plan.
fn shard_output_ok(path: &Path, manifest: &ShardManifest, index: usize) -> bool {
    match DsrFile::read(path) {
        Ok(file) => {
            file.grid == manifest.grid
                && file.shard_index == index
                && file.shard_count == manifest.num_shards()
        }
        Err(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{plan, ShardStrategy};
    use dsmt_core::SimConfig;
    use dsmt_sweep::{Axis, SweepGrid, WorkloadSpec};

    fn manifest() -> ShardManifest {
        let grid = SweepGrid::new("exec", SimConfig::paper_multithreaded(1))
            .with_workload(WorkloadSpec::spec_mix(1_500))
            .with_axis(Axis::l2_latencies(&[1, 16, 64]))
            .with_axis(Axis::decoupled(&[true, false]))
            .with_budget(4_000);
        plan(&grid, 3, ShardStrategy::Strided).unwrap()
    }

    #[test]
    fn shard_runs_cover_exactly_their_cells() {
        let m = manifest();
        let engine = SweepEngine::new(2).without_cache();
        let full = engine.run(&m.grid);
        for index in 0..m.num_shards() {
            let run = run_shard(&m, index, &engine).expect("shard runs");
            assert_eq!(run.shard_index, index);
            let cells: Vec<usize> = run.report.records.iter().map(|r| r.cell).collect();
            assert_eq!(cells, m.shards[index]);
            for record in &run.report.records {
                assert_eq!(record, &full.records[record.cell]);
            }
            assert_eq!(run.dsr.shard_index, index);
            assert_eq!(run.dsr.shard_count, 3);
            assert_eq!(run.dsr.records.len(), m.shards[index].len());
        }
    }

    #[test]
    fn bad_indices_and_stale_manifests_are_rejected() {
        let m = manifest();
        let engine = SweepEngine::new(1).without_cache();
        assert!(matches!(
            run_shard(&m, 3, &engine),
            Err(ShardPlanError::BadPartition(_))
        ));
        let mut stale = m;
        stale.grid.seed += 1;
        assert!(matches!(
            run_shard(&stale, 0, &engine),
            Err(ShardPlanError::GridHashMismatch { .. })
        ));
    }

    #[test]
    fn shard_file_names_follow_the_convention() {
        let m = manifest();
        assert_eq!(shard_file_name(&m, 1), "exec.shard-1-of-3.dsr");
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("dsmt-missing-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn missing_pass_recovers_absent_and_corrupt_shards() {
        let m = manifest();
        let dir = temp_dir("recover");
        let engine = SweepEngine::new(2).without_cache();
        // Shard 0 was run normally; shard 1's output is corrupt; shard 2
        // never ran.
        let run0 = run_shard(&m, 0, &engine).unwrap();
        run0.dsr.write(dir.join(shard_file_name(&m, 0))).unwrap();
        std::fs::write(dir.join(shard_file_name(&m, 1)), b"garbage").unwrap();

        let outcome = run_missing(&m, &dir, &engine).expect("recovery pass");
        assert_eq!(outcome.already_done(), vec![0]);
        assert_eq!(outcome.executed(), vec![1, 2]);
        assert!(outcome.complete());
        // Everything now merges into the full grid.
        let files: Vec<DsrFile> = (0..m.num_shards())
            .map(|i| DsrFile::read(dir.join(shard_file_name(&m, i))).expect("verified output"))
            .collect();
        let merged = crate::merge_shards(&m, &files).expect("merge");
        assert_eq!(merged.records, engine.run(&m.grid).records);
        // A second pass finds nothing to do, and the claims were released.
        let again = run_missing(&m, &dir, &engine).expect("idempotent pass");
        assert_eq!(again.executed(), Vec::<usize>::new());
        assert_eq!(again.already_done(), vec![0, 1, 2]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn held_claims_are_respected_not_stolen() {
        let m = manifest();
        let dir = temp_dir("held");
        let engine = SweepEngine::new(1).without_cache();
        // Simulate a worker holding shard 1: its claim exists, no output.
        let held = LockFile::acquire(dir.join("locks"), &shard_file_name(&m, 1))
            .unwrap()
            .expect("claim");
        let outcome = run_missing(&m, &dir, &engine).expect("pass");
        assert_eq!(outcome.executed(), vec![0, 2]);
        assert_eq!(outcome.claimed_elsewhere(), vec![1]);
        assert!(!outcome.complete());
        assert!(!dir.join(shard_file_name(&m, 1)).exists());
        // The holder is identifiable for stale-claim diagnostics.
        assert!(LockFile::holder(dir.join("locks"), &shard_file_name(&m, 1)).is_some());
        drop(held);
        let retry = run_missing(&m, &dir, &engine).expect("retry");
        assert_eq!(retry.executed(), vec![1]);
        assert!(retry.complete());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_manifests_fail_before_any_claim() {
        let mut stale = manifest();
        stale.grid.seed += 1;
        let dir = temp_dir("stale");
        let engine = SweepEngine::new(1).without_cache();
        assert!(matches!(
            run_missing(&stale, &dir, &engine),
            Err(ShardPlanError::GridHashMismatch { .. })
        ));
        assert!(!dir.join("locks").exists(), "no claims were taken");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
