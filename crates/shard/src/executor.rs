//! Runs one shard of a manifest and packages the result.

use std::path::Path;
use std::time::Duration;

use dsmt_store::Claim;
use dsmt_sweep::{SweepEngine, SweepReport};

use crate::{DsrFile, ShardManifest, ShardPlanError, Transport};

/// The outcome of executing one shard: the partial report (with live cache
/// telemetry) and its `.dsr` packaging (identity only, ready to ship).
#[derive(Debug, Clone)]
pub struct ShardRun {
    /// Which shard was executed.
    pub shard_index: usize,
    /// The partial sweep report (records carry grid-order cell indices).
    pub report: SweepReport,
    /// The same records as a writable `.dsr` file.
    pub dsr: DsrFile,
}

/// The conventional file name for a shard's `.dsr` output:
/// `<grid>.shard-<i>-of-<n>.dsr`.
#[must_use]
pub fn shard_file_name(manifest: &ShardManifest, shard_index: usize) -> String {
    format!(
        "{}.shard-{shard_index}-of-{}.dsr",
        manifest.grid.name,
        manifest.num_shards()
    )
}

/// Validates the manifest and executes its `shard_index`-th shard on
/// `engine`. With a shared cache directory, shards running on different
/// hosts dedup overlapping scenarios automatically — the cache key is a
/// pure function of the scenario.
///
/// # Errors
///
/// Any manifest validation error, or [`ShardPlanError::BadPartition`] if
/// `shard_index` is out of range.
///
/// # Panics
///
/// As for [`SweepEngine::run`] (invalid cell configuration, unusable cache
/// directory) — grid construction bugs, not runtime conditions.
pub fn run_shard(
    manifest: &ShardManifest,
    shard_index: usize,
    engine: &SweepEngine,
) -> Result<ShardRun, ShardPlanError> {
    manifest.validate()?;
    let cells = manifest.shards.get(shard_index).ok_or_else(|| {
        ShardPlanError::BadPartition(format!(
            "shard index {shard_index} out of range (plan has {} shards)",
            manifest.num_shards()
        ))
    })?;
    let report = engine.run_subset(&manifest.grid, cells);
    let dsr = DsrFile::from_report(&manifest.grid, &report, shard_index, manifest.num_shards());
    Ok(ShardRun {
        shard_index,
        report,
        dsr,
    })
}

/// How one shard fared during a [`run_missing`] recovery pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardDisposition {
    /// A verified output already existed; nothing to do.
    AlreadyDone,
    /// Another worker holds the claim; left for them.
    ClaimedElsewhere,
    /// This pass claimed, executed and published the shard (an unreadable
    /// or corrupt existing output counts: it is re-run and overwritten).
    Executed,
}

/// The default claim heartbeat interval the CLI runs with: frequent enough
/// that any `--steal-after` over a couple of minutes is safe regardless of
/// shard cost, rare enough that the mtime writes are free.
pub const DEFAULT_HEARTBEAT: Duration = Duration::from_secs(30);

/// Options for a [`recover`] pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoverOptions {
    /// When set, a shard claim whose lockfile mtime is at least this old
    /// is presumed dead (its holder was killed without unwinding) and is
    /// stolen — see [`dsmt_store::LockFile::acquire_or_steal`]. Pick a
    /// deadline comfortably longer than the longest honest shard runtime —
    /// or, with `heartbeat` set, than the heartbeat interval.
    pub steal_after: Option<Duration>,
    /// When set, each claim this pass holds is re-touched at this interval
    /// by a background heartbeat thread (see
    /// [`dsmt_store::LockFile::spawn_heartbeat`]), so a fleet can run
    /// `steal_after` deadlines far shorter than a shard's runtime: only a
    /// worker that actually died stops beating. The CLI passes
    /// [`DEFAULT_HEARTBEAT`].
    pub heartbeat: Option<Duration>,
}

/// One stale claim a [`recover`] pass reaped: which shard, and the holder
/// record of the dead worker (its pid and the claim's age).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StealRecord {
    /// The shard whose claim was stolen.
    pub shard_index: usize,
    /// Holder record of the reaped lockfile (e.g.
    /// `pid 1234 (heartbeat 97s ago)`).
    pub previous: String,
}

/// The outcome of a [`run_missing`]/[`recover`] pass: one disposition per
/// shard, in shard order, plus a record of every stale claim stolen.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MissingRun {
    /// Disposition per shard index.
    pub dispositions: Vec<ShardDisposition>,
    /// Stale claims this pass reaped (always a subset of the `Executed`
    /// shards; empty unless [`RecoverOptions::steal_after`] was set).
    pub steals: Vec<StealRecord>,
}

impl MissingRun {
    /// Shard indices this pass executed.
    #[must_use]
    pub fn executed(&self) -> Vec<usize> {
        self.indices(ShardDisposition::Executed)
    }

    /// Shard indices with verified pre-existing outputs.
    #[must_use]
    pub fn already_done(&self) -> Vec<usize> {
        self.indices(ShardDisposition::AlreadyDone)
    }

    /// Shard indices another worker currently holds.
    #[must_use]
    pub fn claimed_elsewhere(&self) -> Vec<usize> {
        self.indices(ShardDisposition::ClaimedElsewhere)
    }

    /// Whether every shard now has a verified output (nothing was left to
    /// a concurrent claimant).
    #[must_use]
    pub fn complete(&self) -> bool {
        self.claimed_elsewhere().is_empty()
    }

    fn indices(&self, want: ShardDisposition) -> Vec<usize> {
        self.dispositions
            .iter()
            .enumerate()
            .filter(|(_, &d)| d == want)
            .map(|(i, _)| i)
            .collect()
    }
}

/// Executes every shard of `manifest` that has no verified output under
/// `dir` yet (loose-`.dsr` transport, no claim stealing) — shorthand for
/// [`recover`] over [`Transport::loose`] with default options, kept as
/// the stable entry point for scripts and tests of the PR 3 protocol.
///
/// # Errors
///
/// As for [`recover`].
pub fn run_missing(
    manifest: &ShardManifest,
    dir: impl AsRef<Path>,
    engine: &SweepEngine,
) -> Result<MissingRun, ShardPlanError> {
    recover(
        manifest,
        &mut Transport::loose(dir.as_ref()),
        engine,
        &RecoverOptions::default(),
    )
}

/// Executes every shard of `manifest` that has no verified output on
/// `transport` yet, claiming each through an `O_EXCL` lockfile first —
/// the self-healing path for fleets: any number of recovery workers can
/// run this concurrently (or after hosts died mid-run) and each missing
/// shard is executed exactly once.
///
/// A shard output that exists but fails verification (truncated, corrupt,
/// foreign grid, evicted store segment) is treated as missing: it is
/// re-run and atomically re-published. Claims release when this pass
/// finishes; a worker that died *holding* a claim blocks the shard only
/// until the claim expires — with [`RecoverOptions::steal_after`] set,
/// a claim whose lockfile is older than the deadline is reaped (exactly
/// one racing stealer wins) and the shard re-executed, with the dead
/// holder named in [`MissingRun::steals`].
///
/// # Errors
///
/// Any manifest validation error, and a publish failure surfaces as
/// [`ShardPlanError::BadPartition`]; execution itself panics only for
/// grid construction bugs, as [`run_shard`] does.
pub fn recover(
    manifest: &ShardManifest,
    transport: &mut Transport,
    engine: &SweepEngine,
    options: &RecoverOptions,
) -> Result<MissingRun, ShardPlanError> {
    manifest.validate()?;
    let _span = dsmt_obs::span("shard.recover")
        .field("grid", manifest.grid.name.as_str())
        .field("shards", manifest.num_shards());
    let mut dispositions = Vec::with_capacity(manifest.num_shards());
    let mut steals = Vec::new();
    for index in 0..manifest.num_shards() {
        if transport.read_verified(manifest, index).is_some() {
            dispositions.push(ShardDisposition::AlreadyDone);
            dsmt_obs::counter!("shard.shards_already_done").inc();
            continue;
        }
        let claim = match transport.claim(manifest, index, options.steal_after) {
            Ok(claim) => claim,
            // Claiming I/O trouble is indistinguishable from contention
            // for this pass's purposes; leave the shard for a retry.
            Err(_) => {
                dispositions.push(ShardDisposition::ClaimedElsewhere);
                continue;
            }
        };
        let stolen_from = match &claim {
            Claim::Acquired(_) => None,
            Claim::Stolen { previous, .. } => Some(previous.clone()),
            Claim::Held(_) => {
                dispositions.push(ShardDisposition::ClaimedElsewhere);
                continue;
            }
        };
        dsmt_obs::counter!("shard.claims_acquired").inc();
        dsmt_obs::info!("shard.claim_acquired", shard = index);
        if let Some(previous) = &stolen_from {
            dsmt_obs::counter!("shard.claims_stolen").inc();
            dsmt_obs::info!(
                "shard.claim_stolen",
                shard = index,
                previous = previous.as_str()
            );
        }
        // Keep the claim visibly alive while the shard runs: the beat
        // stops (and its thread joins) before the claim itself releases.
        let _heartbeat = options
            .heartbeat
            .and_then(|interval| claim.lock().map(|lock| lock.spawn_heartbeat(interval)));
        // Double-check under the claim: another worker may have finished
        // between the probe and the acquire.
        if transport.read_verified(manifest, index).is_some() {
            dispositions.push(ShardDisposition::AlreadyDone);
            dsmt_obs::counter!("shard.shards_already_done").inc();
            continue;
        }
        let run = run_shard(manifest, index, engine)?;
        transport.publish(manifest, &run.dsr).map_err(|e| {
            ShardPlanError::BadPartition(format!("cannot publish shard {index}: {e}"))
        })?;
        dsmt_obs::counter!("shard.shards_executed").inc();
        dsmt_obs::info!(
            "shard.published",
            shard = index,
            records = run.dsr.records.len()
        );
        if let Some(previous) = stolen_from {
            steals.push(StealRecord {
                shard_index: index,
                previous,
            });
        }
        dispositions.push(ShardDisposition::Executed);
        // The heartbeat stops first, then `claim` (and its lockfile)
        // releases — both after the publish.
        drop(_heartbeat);
        drop(claim);
    }
    Ok(MissingRun {
        dispositions,
        steals,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{plan, ShardStrategy};
    use dsmt_core::SimConfig;
    use dsmt_store::LockFile;
    use dsmt_sweep::{Axis, SweepGrid, WorkloadSpec};

    fn manifest() -> ShardManifest {
        let grid = SweepGrid::new("exec", SimConfig::paper_multithreaded(1))
            .with_workload(WorkloadSpec::spec_mix(1_500))
            .with_axis(Axis::l2_latencies(&[1, 16, 64]))
            .with_axis(Axis::decoupled(&[true, false]))
            .with_budget(4_000);
        plan(&grid, 3, ShardStrategy::Strided).unwrap()
    }

    #[test]
    fn shard_runs_cover_exactly_their_cells() {
        let m = manifest();
        let engine = SweepEngine::new(2).without_cache();
        let full = engine.run(&m.grid);
        for index in 0..m.num_shards() {
            let run = run_shard(&m, index, &engine).expect("shard runs");
            assert_eq!(run.shard_index, index);
            let cells: Vec<usize> = run.report.records.iter().map(|r| r.cell).collect();
            assert_eq!(cells, m.shards[index]);
            for record in &run.report.records {
                assert_eq!(record, &full.records[record.cell]);
            }
            assert_eq!(run.dsr.shard_index, index);
            assert_eq!(run.dsr.shard_count, 3);
            assert_eq!(run.dsr.records.len(), m.shards[index].len());
        }
    }

    #[test]
    fn bad_indices_and_stale_manifests_are_rejected() {
        let m = manifest();
        let engine = SweepEngine::new(1).without_cache();
        assert!(matches!(
            run_shard(&m, 3, &engine),
            Err(ShardPlanError::BadPartition(_))
        ));
        let mut stale = m;
        stale.grid.seed += 1;
        assert!(matches!(
            run_shard(&stale, 0, &engine),
            Err(ShardPlanError::GridHashMismatch { .. })
        ));
    }

    #[test]
    fn shard_file_names_follow_the_convention() {
        let m = manifest();
        assert_eq!(shard_file_name(&m, 1), "exec.shard-1-of-3.dsr");
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("dsmt-missing-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn missing_pass_recovers_absent_and_corrupt_shards() {
        let m = manifest();
        let dir = temp_dir("recover");
        let engine = SweepEngine::new(2).without_cache();
        // Shard 0 was run normally; shard 1's output is corrupt; shard 2
        // never ran.
        let run0 = run_shard(&m, 0, &engine).unwrap();
        run0.dsr.write(dir.join(shard_file_name(&m, 0))).unwrap();
        std::fs::write(dir.join(shard_file_name(&m, 1)), b"garbage").unwrap();

        let outcome = run_missing(&m, &dir, &engine).expect("recovery pass");
        assert_eq!(outcome.already_done(), vec![0]);
        assert_eq!(outcome.executed(), vec![1, 2]);
        assert!(outcome.complete());
        // Everything now merges into the full grid.
        let files: Vec<DsrFile> = (0..m.num_shards())
            .map(|i| DsrFile::read(dir.join(shard_file_name(&m, i))).expect("verified output"))
            .collect();
        let merged = crate::merge_shards(&m, &files).expect("merge");
        assert_eq!(merged.records, engine.run(&m.grid).records);
        // A second pass finds nothing to do, and the claims were released.
        let again = run_missing(&m, &dir, &engine).expect("idempotent pass");
        assert_eq!(again.executed(), Vec::<usize>::new());
        assert_eq!(again.already_done(), vec![0, 1, 2]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn held_claims_are_respected_not_stolen() {
        let m = manifest();
        let dir = temp_dir("held");
        let engine = SweepEngine::new(1).without_cache();
        // Simulate a worker holding shard 1: its claim exists, no output.
        let held = LockFile::acquire(dir.join("locks"), &shard_file_name(&m, 1))
            .unwrap()
            .expect("claim");
        let outcome = run_missing(&m, &dir, &engine).expect("pass");
        assert_eq!(outcome.executed(), vec![0, 2]);
        assert_eq!(outcome.claimed_elsewhere(), vec![1]);
        assert!(!outcome.complete());
        assert!(!dir.join(shard_file_name(&m, 1)).exists());
        // The holder is identifiable for stale-claim diagnostics.
        assert!(LockFile::holder(dir.join("locks"), &shard_file_name(&m, 1)).is_some());
        drop(held);
        let retry = run_missing(&m, &dir, &engine).expect("retry");
        assert_eq!(retry.executed(), vec![1]);
        assert!(retry.complete());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recover_over_the_store_transport_heals_missing_shards() {
        let m = manifest();
        let dir = temp_dir("store-recover");
        let engine = SweepEngine::new(2).without_cache();
        // Shard 0 published normally; 1 and 2 never ran.
        let mut transport = crate::Transport::store(&dir).expect("store transport");
        let run0 = run_shard(&m, 0, &engine).unwrap();
        transport.publish(&m, &run0.dsr).expect("publish");

        let outcome = recover(&m, &mut transport, &engine, &RecoverOptions::default())
            .expect("recovery pass");
        assert_eq!(outcome.already_done(), vec![0]);
        assert_eq!(outcome.executed(), vec![1, 2]);
        assert!(outcome.steals.is_empty());
        assert!(outcome.complete());
        // The store now merges bit-identically to a monolithic run.
        let merged = crate::merge_from(&m, &mut transport).expect("merge");
        let mono = engine.run(&m.grid);
        assert_eq!(merged.records, mono.records);
        assert_eq!(
            DsrFile::from_report(&m.grid, &merged, 0, 1).encode(),
            DsrFile::from_report(&m.grid, &mono, 0, 1).encode(),
        );
        // A second pass is a no-op, and all claims were released.
        let again =
            recover(&m, &mut transport, &engine, &RecoverOptions::default()).expect("idempotent");
        assert_eq!(again.already_done(), vec![0, 1, 2]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_claims_are_reaped_and_reported_but_live_ones_respected() {
        let m = manifest();
        let dir = temp_dir("steal");
        let engine = SweepEngine::new(1).without_cache();
        let mut transport = crate::Transport::store(&dir).expect("store transport");
        // A worker died without unwinding while holding shard 1: its claim
        // file survives. Backdate it so it reads as 1h old.
        let dead = LockFile::acquire(transport.locks_dir(), &m.claim_name(1))
            .unwrap()
            .expect("claim");
        std::mem::forget(dead);
        LockFile::backdate_for_tests(
            transport.locks_dir(),
            &m.claim_name(1),
            Duration::from_secs(3600),
        );

        // Without --steal-after (or with a deadline the claim has not
        // reached) the shard is left alone.
        for options in [
            RecoverOptions::default(),
            RecoverOptions {
                steal_after: Some(Duration::from_secs(7200)),
                ..RecoverOptions::default()
            },
        ] {
            let outcome = recover(&m, &mut transport, &engine, &options).expect("pass");
            assert_eq!(outcome.claimed_elsewhere(), vec![1], "{options:?}");
            assert!(outcome.steals.is_empty());
        }
        // Past the deadline the claim is stolen and the shard recovered,
        // with the dead holder named in the report.
        let outcome = recover(
            &m,
            &mut transport,
            &engine,
            &RecoverOptions {
                steal_after: Some(Duration::from_secs(60)),
                ..RecoverOptions::default()
            },
        )
        .expect("stealing pass");
        assert_eq!(outcome.executed(), vec![1]);
        assert!(outcome.complete());
        assert_eq!(outcome.steals.len(), 1);
        assert_eq!(outcome.steals[0].shard_index, 1);
        assert!(outcome.steals[0]
            .previous
            .contains(&std::process::id().to_string()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn eight_racing_recoverers_steal_a_dead_shard_exactly_once() {
        // One dead-held shard, 8 concurrent `--steal-after` recoverers:
        // exactly one may steal and execute it; the rest see the claim
        // held or the output already published. Each thread uses its own
        // transport handle, as separate worker processes would.
        let grid = SweepGrid::new("steal-race", SimConfig::paper_multithreaded(1))
            .with_workload(WorkloadSpec::spec_mix(1_500))
            .with_axis(Axis::l2_latencies(&[16]))
            .with_budget(3_000);
        let m = plan(&grid, 1, ShardStrategy::Contiguous).unwrap();
        let dir = temp_dir("steal-race");
        let setup = crate::Transport::store(&dir).expect("store transport");
        let dead = LockFile::acquire(setup.locks_dir(), &m.claim_name(0))
            .unwrap()
            .expect("claim");
        std::mem::forget(dead);
        LockFile::backdate_for_tests(
            setup.locks_dir(),
            &m.claim_name(0),
            Duration::from_secs(3600),
        );

        let barrier = std::sync::Barrier::new(8);
        let outcomes: Vec<MissingRun> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    s.spawn(|| {
                        let engine = SweepEngine::new(1).without_cache();
                        let mut transport = crate::Transport::store(&dir).expect("transport");
                        barrier.wait();
                        recover(
                            &m,
                            &mut transport,
                            &engine,
                            &RecoverOptions {
                                steal_after: Some(Duration::from_secs(60)),
                                ..RecoverOptions::default()
                            },
                        )
                        .expect("recover")
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let executed: usize = outcomes.iter().map(|o| o.executed().len()).sum();
        let stolen: usize = outcomes.iter().map(|o| o.steals.len()).sum();
        assert_eq!(executed, 1, "the shard must be executed exactly once");
        assert_eq!(stolen, 1, "exactly one recoverer may steal the claim");
        // Whoever won, the output is now verified and merges.
        let mut transport = crate::Transport::store(&dir).expect("transport");
        assert!(transport.read_verified(&m, 0).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_manifests_fail_before_any_claim() {
        let mut stale = manifest();
        stale.grid.seed += 1;
        let dir = temp_dir("stale");
        let engine = SweepEngine::new(1).without_cache();
        assert!(matches!(
            run_missing(&stale, &dir, &engine),
            Err(ShardPlanError::GridHashMismatch { .. })
        ));
        assert!(!dir.join("locks").exists(), "no claims were taken");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
