//! Runs one shard of a manifest and packages the result.

use dsmt_sweep::{SweepEngine, SweepReport};

use crate::{DsrFile, ShardManifest, ShardPlanError};

/// The outcome of executing one shard: the partial report (with live cache
/// telemetry) and its `.dsr` packaging (identity only, ready to ship).
#[derive(Debug, Clone)]
pub struct ShardRun {
    /// Which shard was executed.
    pub shard_index: usize,
    /// The partial sweep report (records carry grid-order cell indices).
    pub report: SweepReport,
    /// The same records as a writable `.dsr` file.
    pub dsr: DsrFile,
}

/// The conventional file name for a shard's `.dsr` output:
/// `<grid>.shard-<i>-of-<n>.dsr`.
#[must_use]
pub fn shard_file_name(manifest: &ShardManifest, shard_index: usize) -> String {
    format!(
        "{}.shard-{shard_index}-of-{}.dsr",
        manifest.grid.name,
        manifest.num_shards()
    )
}

/// Validates the manifest and executes its `shard_index`-th shard on
/// `engine`. With a shared cache directory, shards running on different
/// hosts dedup overlapping scenarios automatically — the cache key is a
/// pure function of the scenario.
///
/// # Errors
///
/// Any manifest validation error, or [`ShardPlanError::BadPartition`] if
/// `shard_index` is out of range.
///
/// # Panics
///
/// As for [`SweepEngine::run`] (invalid cell configuration, unusable cache
/// directory) — grid construction bugs, not runtime conditions.
pub fn run_shard(
    manifest: &ShardManifest,
    shard_index: usize,
    engine: &SweepEngine,
) -> Result<ShardRun, ShardPlanError> {
    manifest.validate()?;
    let cells = manifest.shards.get(shard_index).ok_or_else(|| {
        ShardPlanError::BadPartition(format!(
            "shard index {shard_index} out of range (plan has {} shards)",
            manifest.num_shards()
        ))
    })?;
    let report = engine.run_subset(&manifest.grid, cells);
    let dsr = DsrFile::from_report(&manifest.grid, &report, shard_index, manifest.num_shards());
    Ok(ShardRun {
        shard_index,
        report,
        dsr,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{plan, ShardStrategy};
    use dsmt_core::SimConfig;
    use dsmt_sweep::{Axis, SweepGrid, WorkloadSpec};

    fn manifest() -> ShardManifest {
        let grid = SweepGrid::new("exec", SimConfig::paper_multithreaded(1))
            .with_workload(WorkloadSpec::spec_mix(1_500))
            .with_axis(Axis::l2_latencies(&[1, 16, 64]))
            .with_axis(Axis::decoupled(&[true, false]))
            .with_budget(4_000);
        plan(&grid, 3, ShardStrategy::Strided).unwrap()
    }

    #[test]
    fn shard_runs_cover_exactly_their_cells() {
        let m = manifest();
        let engine = SweepEngine::new(2).without_cache();
        let full = engine.run(&m.grid);
        for index in 0..m.num_shards() {
            let run = run_shard(&m, index, &engine).expect("shard runs");
            assert_eq!(run.shard_index, index);
            let cells: Vec<usize> = run.report.records.iter().map(|r| r.cell).collect();
            assert_eq!(cells, m.shards[index]);
            for record in &run.report.records {
                assert_eq!(record, &full.records[record.cell]);
            }
            assert_eq!(run.dsr.shard_index, index);
            assert_eq!(run.dsr.shard_count, 3);
            assert_eq!(run.dsr.records.len(), m.shards[index].len());
        }
    }

    #[test]
    fn bad_indices_and_stale_manifests_are_rejected() {
        let m = manifest();
        let engine = SweepEngine::new(1).without_cache();
        assert!(matches!(
            run_shard(&m, 3, &engine),
            Err(ShardPlanError::BadPartition(_))
        ));
        let mut stale = m;
        stale.grid.seed += 1;
        assert!(matches!(
            run_shard(&stale, 0, &engine),
            Err(ShardPlanError::GridHashMismatch { .. })
        ));
    }

    #[test]
    fn shard_file_names_follow_the_convention() {
        let m = manifest();
        assert_eq!(shard_file_name(&m, 1), "exec.shard-1-of-3.dsr");
    }
}
