//! How shard outputs travel between hosts: loose `.dsr` files or the
//! result store.
//!
//! The original (PR 3) protocol shipped each shard as a standalone `.dsr`
//! file next to the plan — simple, but it left shard outputs outside the
//! one layer that already knows how to share a directory safely. The
//! **store transport** publishes each shard's records *into* a
//! [`dsmt_store::Store`] instead, keyed by
//! [`ShardManifest::shard_key`] (grid content hash + shard index + shard
//! count, in the `shard-output` key namespace):
//!
//! * shard outputs inherit the store's checksummed segments, atomic
//!   publishes, LRU GC and compaction for free (an evicted shard output is
//!   simply re-run by the next `--missing` pass);
//! * the whole fleet protocol reduces to **one store directory** — point
//!   the transport at the same directory as `DSMT_SWEEP_CACHE` and
//!   scenario results and shard outputs share segments, claims and GC;
//! * the merger and `dsmt shard status` observe other hosts' publishes on
//!   a live handle via [`dsmt_store::Store::refresh`].
//!
//! Both transports hang their recovery claims off the same [`LockFile`]
//! protocol, so [`crate::recover`] (and `dsmt shard run --missing
//! --steal-after`) works identically over either. The loose transport
//! remains fully supported — existing fixtures, golden files and scripts
//! keep working — and [`Transport`] is the one switch that selects
//! between them.
//!
//! A shard output is stored as a [`Value`] tree (same codec as every other
//! store record):
//!
//! ```text
//! { "kind":        "shard-output",
//!   "schema":      1,
//!   "grid_hash":   "<16-hex grid content hash>",
//!   "shard_index": i,
//!   "shard_count": n,
//!   "records":     [ { "cell": c, "results": <SimResults> }, ... ] }
//! ```
//!
//! Reads verify `kind`/`schema`/`grid_hash`/`shard_index`/`shard_count`
//! against the manifest before trusting a record, so a freak key collision
//! (or a hand-copied foreign store) degrades to "shard missing", never to
//! merging someone else's cells.

use std::path::{Path, PathBuf};
use std::time::Duration;

use dsmt_core::SimResults;
use dsmt_store::{Claim, ClaimInfo, LockFile, Store};
use dsmt_sweep::CACHE_SCHEMA_VERSION;
use serde::{Deserialize, Serialize, Value};

use crate::{shard_file_name, DsrFile, DsrRecord, ShardManifest};

/// Bumped on any change to the shard-output [`Value`] layout; readers
/// treat other schemas as missing (re-run), never misread them.
pub const SHARD_VALUE_SCHEMA: u64 = 1;

/// A store opened for shard-output traffic.
///
/// Thin wrapper over [`Store`] fixing the client schema to the sweep
/// cache's ([`CACHE_SCHEMA_VERSION`]) — deliberately, so one directory can
/// serve as both the fleet's scenario cache and its shard transport.
#[derive(Debug)]
pub struct ShardStore {
    store: Store,
}

impl ShardStore {
    /// Opens (creating if needed) `dir` as a shard-output store.
    ///
    /// # Errors
    ///
    /// A human-readable message for any [`Store::open`] failure (legacy v2
    /// layout, schema mismatch, corrupt segment, I/O).
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, String> {
        let dir = dir.into();
        Store::open(&dir, CACHE_SCHEMA_VERSION)
            .map(|store| ShardStore { store })
            .map_err(|e| format!("{}: {e}", dir.display()))
    }

    /// The store's root directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        self.store.dir()
    }

    /// Picks up segments other workers published since open (or the last
    /// refresh). Errors (e.g. a corrupt foreign segment) are reported as a
    /// warning event and otherwise ignored: the snapshot stays usable, and
    /// the cost is re-running a shard, never a wrong merge.
    pub fn refresh(&mut self) {
        if let Err(e) = self.store.refresh() {
            dsmt_obs::warn!("shard.store_refresh_failed", error = e.to_string());
        }
    }

    /// Publishes one shard's output as a new segment (atomic, idempotent:
    /// re-publishing identical records lands on the same content-addressed
    /// file). Returns the segment file name.
    ///
    /// # Errors
    ///
    /// A human-readable message on filesystem failure.
    pub fn publish(&mut self, manifest: &ShardManifest, dsr: &DsrFile) -> Result<String, String> {
        let key = manifest.shard_key(dsr.shard_index);
        let value = shard_value(manifest, dsr);
        let info = self
            .store
            .publish(vec![(key, value)])
            .map_err(|e| e.to_string())?;
        Ok(info.expect("non-empty batch").name)
    }

    /// The verified output of shard `index`, if the store holds one for
    /// exactly this manifest. Reads the current snapshot; call
    /// [`ShardStore::refresh`] first to observe other hosts' publishes.
    #[must_use]
    pub fn get(&self, manifest: &ShardManifest, index: usize) -> Option<DsrFile> {
        shard_from_value(manifest, index, self.store.get(manifest.shard_key(index))?)
    }

    /// Like [`ShardStore::get`], but distinguishes "nothing under this
    /// shard's key" (`Ok(None)`) from "a record exists but does not
    /// verify as this plan's shard output" (`Err(why)`) — so a merger can
    /// report a collision, foreign record, or byte-level corruption
    /// (surfaced by the store's lazy verify-on-read) instead of calling
    /// it absent.
    ///
    /// # Errors
    ///
    /// A description of why the stored record failed verification.
    pub fn get_checked(
        &self,
        manifest: &ShardManifest,
        index: usize,
    ) -> Result<Option<DsrFile>, String> {
        match self.store.try_get(manifest.shard_key(index)) {
            Ok(None) => Ok(None),
            Err(e) => Err(format!(
                "the store record under shard {index}'s key failed verification: {e}"
            )),
            Ok(Some(value)) => match shard_from_value(manifest, index, value) {
                Some(file) => Ok(Some(file)),
                None => Err(format!(
                    "the store record under shard {index}'s key is not a verifiable \
                     shard-output of this plan (foreign, malformed, or a key collision)"
                )),
            },
        }
    }

    /// The directory recovery claims live in (`<store>/locks`).
    #[must_use]
    pub fn locks_dir(&self) -> PathBuf {
        self.store.locks_dir()
    }

    /// Read access to the underlying [`Store`], for clients (the serve
    /// daemon's `/cells/{key}` endpoint) that look up raw records beside
    /// the shard-output traffic.
    #[must_use]
    pub fn as_store(&self) -> &Store {
        &self.store
    }
}

/// Encodes a shard output as its store [`Value`] (see the module docs for
/// the layout).
fn shard_value(manifest: &ShardManifest, dsr: &DsrFile) -> Value {
    Value::Object(vec![
        ("kind".to_string(), Value::Str("shard-output".to_string())),
        ("schema".to_string(), Value::U64(SHARD_VALUE_SCHEMA)),
        (
            "grid_hash".to_string(),
            Value::Str(manifest.grid_hash.clone()),
        ),
        (
            "shard_index".to_string(),
            Value::U64(dsr.shard_index as u64),
        ),
        (
            "shard_count".to_string(),
            Value::U64(dsr.shard_count as u64),
        ),
        (
            "records".to_string(),
            Value::Array(
                dsr.records
                    .iter()
                    .map(|r| {
                        Value::Object(vec![
                            ("cell".to_string(), Value::U64(r.cell as u64)),
                            ("results".to_string(), r.results.to_value()),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Decodes a store value back into a [`DsrFile`], verifying it is the
/// output of shard `index` of exactly this manifest. Any mismatch or
/// malformation returns `None` — the shard then counts as missing and is
/// re-run, which is always safe.
fn shard_from_value(manifest: &ShardManifest, index: usize, value: &Value) -> Option<DsrFile> {
    let kind = value.field("kind").ok()?.as_str().ok()?;
    let schema = value.field("schema").ok()?.as_u64().ok()?;
    let grid_hash = value.field("grid_hash").ok()?.as_str().ok()?;
    let shard_index = value.field("shard_index").ok()?.as_u64().ok()?;
    let shard_count = value.field("shard_count").ok()?.as_u64().ok()?;
    if kind != "shard-output"
        || schema != SHARD_VALUE_SCHEMA
        || grid_hash != manifest.grid_hash
        || shard_index != index as u64
        || shard_count != manifest.num_shards() as u64
    {
        return None;
    }
    let Value::Array(entries) = value.field("records").ok()? else {
        return None;
    };
    let records = entries
        .iter()
        .map(|entry| {
            let cell = usize::try_from(entry.field("cell").ok()?.as_u64().ok()?).ok()?;
            let results = SimResults::from_value(entry.field("results").ok()?).ok()?;
            Some(DsrRecord { cell, results })
        })
        .collect::<Option<Vec<_>>>()?;
    Some(DsrFile {
        grid: manifest.grid.clone(),
        shard_index: index,
        shard_count: manifest.num_shards(),
        records,
    })
}

/// Where shard outputs live: the one switch between the legacy
/// loose-`.dsr` protocol and the store transport. Executor, merger,
/// status and recovery all work over either.
#[derive(Debug)]
pub enum Transport {
    /// Standalone `.dsr` files named [`shard_file_name`] under a
    /// directory, with recovery claims under `<dir>/locks` (the PR 3
    /// protocol; golden fixtures and existing scripts use this).
    Loose {
        /// The output directory.
        dir: PathBuf,
    },
    /// Shard outputs published into a [`ShardStore`].
    Store(ShardStore),
}

impl Transport {
    /// A loose-file transport rooted at `dir`.
    #[must_use]
    pub fn loose(dir: impl Into<PathBuf>) -> Self {
        Transport::Loose { dir: dir.into() }
    }

    /// A store transport rooted at `dir`.
    ///
    /// # Errors
    ///
    /// As for [`ShardStore::open`].
    pub fn store(dir: impl Into<PathBuf>) -> Result<Self, String> {
        ShardStore::open(dir).map(Transport::Store)
    }

    /// One line describing the transport, for CLI output.
    #[must_use]
    pub fn describe(&self) -> String {
        match self {
            Transport::Loose { dir } => format!("loose .dsr files in {}", dir.display()),
            Transport::Store(store) => format!("store at {}", store.dir().display()),
        }
    }

    /// The directory recovery claims live in.
    #[must_use]
    pub fn locks_dir(&self) -> PathBuf {
        match self {
            Transport::Loose { dir } => dir.join("locks"),
            Transport::Store(store) => store.locks_dir(),
        }
    }

    /// The claim name guarding shard `index` on this transport. Loose mode
    /// keeps the historical file-name claims; the store transport scopes
    /// claims by grid hash so unrelated plans can share one directory.
    #[must_use]
    pub fn claim_name(&self, manifest: &ShardManifest, index: usize) -> String {
        match self {
            Transport::Loose { .. } => shard_file_name(manifest, index),
            Transport::Store(_) => manifest.claim_name(index),
        }
    }

    /// Tries to claim shard `index`, stealing a stale claim when
    /// `steal_after` says so (see [`LockFile::acquire_or_steal`]).
    ///
    /// # Errors
    ///
    /// Any I/O error other than the expected claim races.
    pub fn claim(
        &self,
        manifest: &ShardManifest,
        index: usize,
        steal_after: Option<Duration>,
    ) -> std::io::Result<Claim> {
        LockFile::acquire_or_steal(
            self.locks_dir(),
            &self.claim_name(manifest, index),
            steal_after,
        )
    }

    /// The verified output of shard `index`, or `None` when it is absent,
    /// corrupt, or belongs to a different plan. Store transports refresh
    /// first, so publishes by other live workers are observed.
    #[must_use]
    pub fn read_verified(&mut self, manifest: &ShardManifest, index: usize) -> Option<DsrFile> {
        match self {
            Transport::Loose { dir } => {
                let path = dir.join(shard_file_name(manifest, index));
                let file = DsrFile::read(path).ok()?;
                (file.grid == manifest.grid
                    && file.shard_index == index
                    && file.shard_count == manifest.num_shards())
                .then_some(file)
            }
            Transport::Store(store) => {
                store.refresh();
                store.get(manifest, index)
            }
        }
    }

    /// Reads shard `index` for a merge, preserving precise diagnostics
    /// instead of [`Transport::read_verified`]'s everything-is-missing
    /// collapse: an absent output is `Ok(None)`; a loose file that exists
    /// but fails to decode keeps its [`crate::DsrError`] text (checksum
    /// mismatch, truncation, version skew); an unverifiable store record
    /// explains itself. Provenance checks (foreign grid, wrong shard
    /// count) are left to `merge_shards`, which reports them per shard.
    ///
    /// # Errors
    ///
    /// Why a *present* output could not be used.
    pub fn read_for_merge(
        &mut self,
        manifest: &ShardManifest,
        index: usize,
    ) -> Result<Option<DsrFile>, String> {
        match self {
            Transport::Loose { dir } => {
                let path = dir.join(shard_file_name(manifest, index));
                if !path.exists() {
                    return Ok(None);
                }
                DsrFile::read(&path)
                    .map(Some)
                    .map_err(|e| format!("{}: {e}", path.display()))
            }
            Transport::Store(store) => {
                store.refresh();
                store.get_checked(manifest, index)
            }
        }
    }

    /// Publishes one shard's output (atomically, on either transport).
    ///
    /// # Errors
    ///
    /// A human-readable message on filesystem failure.
    pub fn publish(&mut self, manifest: &ShardManifest, dsr: &DsrFile) -> Result<(), String> {
        match self {
            Transport::Loose { dir } => {
                let path = dir.join(shard_file_name(manifest, dsr.shard_index));
                dsr.write(path).map_err(|e| e.to_string())
            }
            Transport::Store(store) => store.publish(manifest, dsr).map(|_| ()),
        }
    }

    /// One status probe over every shard of the plan: done / claimed (by
    /// whom, how long ago) / missing. Store transports refresh first, so a
    /// polling watcher sees the store fill up live.
    #[must_use]
    pub fn status(&mut self, manifest: &ShardManifest) -> StatusReport {
        let shards = (0..manifest.num_shards())
            .map(|index| {
                let state = match self.read_verified(manifest, index) {
                    Some(file) => ShardState::Done {
                        records: file.records.len(),
                    },
                    None => {
                        match LockFile::inspect(self.locks_dir(), &self.claim_name(manifest, index))
                        {
                            Some(info) => ShardState::Claimed(info),
                            None => ShardState::Missing,
                        }
                    }
                };
                ShardStatus { index, state }
            })
            .collect();
        StatusReport { shards }
    }
}

/// What one shard looks like from the outside right now.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardState {
    /// A verified output exists.
    Done {
        /// Records the output holds.
        records: usize,
    },
    /// No verified output, but a worker holds the recovery claim.
    Claimed(ClaimInfo),
    /// No output, no claim: nobody is working on this shard.
    Missing,
}

/// One shard's [`ShardState`], tagged with its index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardStatus {
    /// The shard index.
    pub index: usize,
    /// Its observed state.
    pub state: ShardState,
}

/// A point-in-time fleet status: one [`ShardStatus`] per shard, in shard
/// order (what `dsmt shard status` prints).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatusReport {
    /// Per-shard states.
    pub shards: Vec<ShardStatus>,
}

impl StatusReport {
    /// Shards with verified outputs.
    #[must_use]
    pub fn done(&self) -> usize {
        self.count(|s| matches!(s, ShardState::Done { .. }))
    }

    /// Shards currently claimed by some worker.
    #[must_use]
    pub fn claimed(&self) -> usize {
        self.count(|s| matches!(s, ShardState::Claimed(_)))
    }

    /// Shards with neither output nor claim.
    #[must_use]
    pub fn missing(&self) -> usize {
        self.count(|s| matches!(s, ShardState::Missing))
    }

    /// Whether every shard has a verified output (ready to merge).
    #[must_use]
    pub fn complete(&self) -> bool {
        self.done() == self.shards.len()
    }

    fn count(&self, want: impl Fn(&ShardState) -> bool) -> usize {
        self.shards.iter().filter(|s| want(&s.state)).count()
    }

    /// The one machine-readable rendering of a status probe, shared by
    /// `dsmt shard status --json` and the serve daemon's
    /// `GET /grids/{hash}/status` endpoint so scripts never scrape the
    /// human table. Layout:
    ///
    /// ```text
    /// { "grid":      "<grid name>",
    ///   "grid_hash": "<16-hex>",
    ///   "strategy":  "contiguous" | "strided",
    ///   "cells":     <total cells>,
    ///   "shards":    <shard count>,
    ///   "done":      d, "claimed": c, "missing": m,
    ///   "complete":  true|false,
    ///   "shard_states": [
    ///     { "index": 0, "cells": 4, "state": "done",    "records": 4 },
    ///     { "index": 1, "cells": 4, "state": "claimed",
    ///       "holder": "pid 123", "heartbeat_age_secs": 12 },
    ///     { "index": 2, "cells": 4, "state": "missing" } ] }
    /// ```
    ///
    /// `heartbeat_age_secs` is omitted when the claim's mtime could not be
    /// read; `records` appears only on done shards.
    #[must_use]
    pub fn to_value(&self, manifest: &ShardManifest) -> Value {
        let shard_states = self
            .shards
            .iter()
            .map(|s| {
                let mut fields = vec![
                    ("index".to_string(), Value::U64(s.index as u64)),
                    (
                        "cells".to_string(),
                        Value::U64(manifest.shards.get(s.index).map_or(0, Vec::len) as u64),
                    ),
                ];
                match &s.state {
                    ShardState::Done { records } => {
                        fields.push(("state".to_string(), Value::Str("done".to_string())));
                        fields.push(("records".to_string(), Value::U64(*records as u64)));
                    }
                    ShardState::Claimed(info) => {
                        fields.push(("state".to_string(), Value::Str("claimed".to_string())));
                        fields.push(("holder".to_string(), Value::Str(info.holder.clone())));
                        if let Some(age) = info.age {
                            fields.push((
                                "heartbeat_age_secs".to_string(),
                                Value::U64(age.as_secs()),
                            ));
                        }
                    }
                    ShardState::Missing => {
                        fields.push(("state".to_string(), Value::Str("missing".to_string())));
                    }
                }
                Value::Object(fields)
            })
            .collect();
        Value::Object(vec![
            ("grid".to_string(), Value::Str(manifest.grid.name.clone())),
            (
                "grid_hash".to_string(),
                Value::Str(manifest.grid_hash.clone()),
            ),
            (
                "strategy".to_string(),
                Value::Str(manifest.strategy.name().to_string()),
            ),
            ("cells".to_string(), Value::U64(manifest.grid.len() as u64)),
            ("shards".to_string(), Value::U64(self.shards.len() as u64)),
            ("done".to_string(), Value::U64(self.done() as u64)),
            ("claimed".to_string(), Value::U64(self.claimed() as u64)),
            ("missing".to_string(), Value::U64(self.missing() as u64)),
            ("complete".to_string(), Value::Bool(self.complete())),
            ("shard_states".to_string(), Value::Array(shard_states)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{plan, run_shard, ShardStrategy};
    use dsmt_core::SimConfig;
    use dsmt_sweep::{Axis, SweepEngine, SweepGrid, WorkloadSpec};

    fn manifest() -> ShardManifest {
        let grid = SweepGrid::new("transport", SimConfig::paper_multithreaded(1))
            .with_workload(WorkloadSpec::spec_mix(1_500))
            .with_axis(Axis::l2_latencies(&[1, 16, 64]))
            .with_budget(4_000);
        plan(&grid, 2, ShardStrategy::Contiguous).unwrap()
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("dsmt-transport-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn shard_keys_and_claims_are_scoped_by_plan() {
        let m = manifest();
        assert_ne!(m.shard_key(0), m.shard_key(1));
        let mut other = m.clone();
        other.grid.seed += 1;
        other.grid_hash = format!("{:016x}", crate::grid_content_hash(&other.grid));
        assert_ne!(m.shard_key(0), other.shard_key(0), "different grids");
        assert_ne!(m.claim_name(0), other.claim_name(0));
        assert_ne!(m.claim_name(0), m.claim_name(1));
    }

    #[test]
    fn store_round_trips_shard_outputs_exactly() {
        let dir = temp_dir("roundtrip");
        let m = manifest();
        let engine = SweepEngine::new(1).without_cache();
        let run = run_shard(&m, 0, &engine).unwrap();

        let mut store = ShardStore::open(&dir).expect("open");
        assert!(store.get(&m, 0).is_none());
        store.publish(&m, &run.dsr).expect("publish");
        let back = store.get(&m, 0).expect("stored shard");
        assert_eq!(back, run.dsr);
        // Byte-exact once packaged: the store transport preserves the
        // subsystem's bit-identity guarantee.
        assert_eq!(back.encode(), run.dsr.encode());
        // Shard 1 is still missing; a foreign manifest sees nothing.
        assert!(store.get(&m, 1).is_none());
        let mut foreign = m.clone();
        foreign.grid.seed += 1;
        foreign.grid_hash = format!("{:016x}", crate::grid_content_hash(&foreign.grid));
        assert!(store.get(&foreign, 0).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn publishes_are_idempotent_and_visible_via_refresh() {
        let dir = temp_dir("refresh");
        let m = manifest();
        let engine = SweepEngine::new(1).without_cache();
        let run = run_shard(&m, 1, &engine).unwrap();

        let mut writer = ShardStore::open(&dir).expect("open writer");
        let mut reader = ShardStore::open(&dir).expect("open reader");
        let a = writer.publish(&m, &run.dsr).expect("publish");
        let b = writer.publish(&m, &run.dsr).expect("republish");
        assert_eq!(a, b, "identical outputs collapse to one segment");
        // The reader's snapshot predates the publish; refresh catches up.
        assert!(reader.get(&m, 1).is_none());
        reader.refresh();
        assert_eq!(reader.get(&m, 1).expect("refreshed"), run.dsr);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn transports_publish_and_read_back_verified_outputs() {
        let m = manifest();
        let engine = SweepEngine::new(1).without_cache();
        let run = run_shard(&m, 0, &engine).unwrap();
        let loose_dir = temp_dir("loose");
        let store_dir = temp_dir("store");
        let mut loose = Transport::loose(&loose_dir);
        let mut store = Transport::store(&store_dir).expect("store transport");
        for transport in [&mut loose, &mut store] {
            assert!(transport.read_verified(&m, 0).is_none());
            transport.publish(&m, &run.dsr).expect("publish");
            assert_eq!(transport.read_verified(&m, 0).expect("verified"), run.dsr);
            assert!(transport.read_verified(&m, 1).is_none());
        }
        // The loose transport wrote the conventional file; a corrupt file
        // reads as missing, not as an error.
        let path = loose_dir.join(shard_file_name(&m, 0));
        assert!(path.is_file());
        std::fs::write(&path, b"garbage").unwrap();
        assert!(loose.read_verified(&m, 0).is_none());
        let _ = std::fs::remove_dir_all(&loose_dir);
        let _ = std::fs::remove_dir_all(&store_dir);
    }

    #[test]
    fn get_checked_distinguishes_absent_from_unverifiable() {
        let dir = temp_dir("checked");
        let m = manifest();
        let mut store = ShardStore::open(&dir).expect("open");
        // Nothing at all under shard 1's key: absent.
        assert_eq!(store.get_checked(&m, 1), Ok(None));
        // A foreign record squatting on shard 0's key (what a key
        // collision or a hand-copied store would look like): reported,
        // not silently "missing".
        store
            .store
            .publish(vec![(m.shard_key(0), Value::U64(42))])
            .unwrap();
        assert!(store.get_checked(&m, 0).is_err());
        assert!(
            store.get(&m, 0).is_none(),
            "read_verified still treats it as missing"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn read_for_merge_keeps_corrupt_file_diagnostics() {
        let dir = temp_dir("merge-diag");
        std::fs::create_dir_all(&dir).unwrap();
        let m = manifest();
        let mut loose = Transport::loose(&dir);
        // Absent: Ok(None).
        assert_eq!(loose.read_for_merge(&m, 0), Ok(None));
        // Present but truncated: the decode error (with the path) survives.
        let path = dir.join(shard_file_name(&m, 0));
        std::fs::write(&path, b"garbage").unwrap();
        let why = loose.read_for_merge(&m, 0).expect_err("corrupt file");
        assert!(why.contains(path.to_str().unwrap()), "{why}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn status_reports_done_claimed_missing() {
        let dir = temp_dir("status");
        let m = manifest();
        let engine = SweepEngine::new(1).without_cache();
        let mut transport = Transport::store(&dir).expect("store transport");

        // Nothing yet: everything missing.
        let empty = transport.status(&m);
        assert_eq!((empty.done(), empty.claimed(), empty.missing()), (0, 0, 2));
        assert!(!empty.complete());

        // Shard 0 done, shard 1 claimed by a (simulated) worker.
        let run = run_shard(&m, 0, &engine).unwrap();
        transport.publish(&m, &run.dsr).expect("publish");
        let held = transport.claim(&m, 1, None).expect("claim io");
        assert!(held.lock().is_some());
        let report = transport.status(&m);
        assert_eq!(
            (report.done(), report.claimed(), report.missing()),
            (1, 1, 0)
        );
        match &report.shards[0].state {
            ShardState::Done { records } => assert_eq!(*records, m.shards[0].len()),
            other => panic!("expected Done, got {other:?}"),
        }
        match &report.shards[1].state {
            ShardState::Claimed(info) => {
                assert!(info.holder.contains(&std::process::id().to_string()));
            }
            other => panic!("expected Claimed, got {other:?}"),
        }
        drop(held);

        // Claim released without an output: back to missing.
        let after = transport.status(&m);
        assert_eq!((after.done(), after.claimed(), after.missing()), (1, 0, 1));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn status_json_serializer_covers_every_state() {
        let dir = temp_dir("status-json");
        let m = manifest();
        let engine = SweepEngine::new(1).without_cache();
        let mut transport = Transport::store(&dir).expect("store transport");
        let run = run_shard(&m, 0, &engine).unwrap();
        transport.publish(&m, &run.dsr).expect("publish");
        let held = transport.claim(&m, 1, None).expect("claim io");
        assert!(held.lock().is_some());

        let value = transport.status(&m).to_value(&m);
        assert_eq!(value.field("grid").unwrap().as_str().unwrap(), m.grid.name);
        assert_eq!(
            value.field("grid_hash").unwrap().as_str().unwrap(),
            m.grid_hash
        );
        assert_eq!(value.field("cells").unwrap().as_u64().unwrap() as usize, 3);
        assert_eq!(value.field("done").unwrap().as_u64().unwrap(), 1);
        assert_eq!(value.field("claimed").unwrap().as_u64().unwrap(), 1);
        assert_eq!(value.field("missing").unwrap().as_u64().unwrap(), 0);
        let Value::Array(states) = value.field("shard_states").unwrap() else {
            panic!("shard_states should be an array");
        };
        assert_eq!(states.len(), 2);
        assert_eq!(states[0].field("state").unwrap().as_str().unwrap(), "done");
        assert_eq!(
            states[0].field("records").unwrap().as_u64().unwrap() as usize,
            m.shards[0].len()
        );
        assert_eq!(
            states[1].field("state").unwrap().as_str().unwrap(),
            "claimed"
        );
        assert!(states[1]
            .field("holder")
            .unwrap()
            .as_str()
            .unwrap()
            .contains(&std::process::id().to_string()));
        // The rendering is valid JSON end to end.
        let text = serde::to_string(&value);
        let back: Value = serde::from_str(&text).expect("round-trip");
        assert_eq!(back.field("complete").unwrap(), &Value::Bool(false));
        drop(held);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
