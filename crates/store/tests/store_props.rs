//! Property and concurrency tests for the store: random value trees must
//! round-trip through segments, multi-segment append + compact must
//! preserve the key→value mapping exactly, and racing writers must never
//! corrupt each other.

use proptest::prelude::*;
use serde::Value;

use dsmt_store::{Segment, Store};

/// A small random [`Value`] generator: scalars at the leaves, arrays and
/// objects down to `depth`. Floats are generated from bits so NaN and
/// infinities occur; object keys are drawn from a tiny pool so interning
/// gets exercised.
fn random_value(rng_bits: u64, depth: u32) -> Value {
    let kind = rng_bits % if depth == 0 { 6 } else { 8 };
    let payload = rng_bits / 8;
    match kind {
        0 => Value::Null,
        1 => Value::Bool(payload.is_multiple_of(2)),
        2 => Value::U64(payload),
        3 => Value::I64(payload as i64),
        4 => {
            let x = f64::from_bits(payload.rotate_left(17));
            Value::F64(x)
        }
        5 => Value::Str(format!("s{}", payload % 7)),
        6 => Value::Array(
            (0..payload % 4)
                .map(|i| random_value(payload.wrapping_mul(i + 3) ^ 0x9e37, depth - 1))
                .collect(),
        ),
        _ => Value::Object(
            (0..payload % 4)
                .map(|i| {
                    (
                        format!("k{}", (payload + i) % 5),
                        random_value(payload.wrapping_mul(i + 5) ^ 0x79b9, depth - 1),
                    )
                })
                .collect(),
        ),
    }
}

/// Bit-exact equality via re-encode (Value's PartialEq fails on NaN).
fn bits_equal(a: &Value, b: &Value) -> bool {
    let enc = |v: &Value| {
        let seg = Segment::new(vec![(0, v.clone())]);
        seg.encode()
    };
    enc(a) == enc(b)
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("dsmt-store-prop-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

proptest! {
    #[test]
    fn segments_round_trip_random_record_batches(
        seeds in prop::collection::vec(any::<u64>(), 0..12),
    ) {
        let records: Vec<(u64, Value)> = seeds
            .iter()
            .enumerate()
            .map(|(i, &s)| (i as u64, random_value(s, 3)))
            .collect();
        let seg = Segment::new(records);
        let bytes = seg.encode();
        let back = Segment::decode(&bytes).expect("decode");
        prop_assert_eq!(back.records.len(), seg.records.len());
        for ((ka, va), (kb, vb)) in seg.records.iter().zip(&back.records) {
            prop_assert_eq!(ka, kb);
            prop_assert!(bits_equal(va, vb));
        }
        // Canonical: re-encoding reproduces the bytes.
        prop_assert_eq!(back.encode(), bytes);
    }

    #[test]
    fn decoding_arbitrary_bytes_never_panics(
        bytes in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let _ = Segment::decode(&bytes);
    }

    #[test]
    fn append_then_compact_preserves_the_key_value_mapping(
        case in any::<u64>(),
        batches in prop::collection::vec(
            prop::collection::vec(any::<u64>(), 1..6),
            1..5,
        ),
    ) {
        let dir = temp_dir(&format!("append-compact-{case}"));
        let mut store = Store::open(&dir, 1).expect("open");
        // Publish batches whose keys overlap (key space 0..8): later
        // batches shadow earlier ones, like repeated sweeps over
        // overlapping grids.
        let mut expect: std::collections::HashMap<u64, Value> = Default::default();
        for (b, batch) in batches.iter().enumerate() {
            let records: Vec<(u64, Value)> = batch
                .iter()
                .map(|&s| (s % 8, random_value(s ^ (b as u64) << 40, 2)))
                .collect();
            for (k, v) in &records {
                expect.insert(*k, v.clone());
            }
            store.publish(records).expect("publish");
        }
        let check = |store: &Store| {
            for (k, v) in &expect {
                let got = store.get(*k).expect("key present");
                assert!(bits_equal(got, v), "key {k} mismatch");
            }
            assert_eq!(store.record_count(), expect.len());
        };
        check(&store);
        // Reload from disk: same mapping.
        let mut store = Store::open(&dir, 1).expect("reopen");
        check(&store);
        // Compact: same mapping, single segment.
        store.compact().expect("compact");
        check(&store);
        prop_assert_eq!(store.segment_count(), 1);
        // And once more from disk.
        let store = Store::open(&dir, 1).expect("reopen after compact");
        check(&store);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Two writers publishing concurrently into one store directory (separate
/// `Store` handles, like two shard processes sharing a cache mount) must
/// both land, verify, and be visible after a refresh.
#[test]
fn concurrent_writers_never_corrupt_the_store() {
    let dir = temp_dir("two-writers");
    drop(Store::open(&dir, 1).expect("create"));
    let barrier = std::sync::Barrier::new(2);
    std::thread::scope(|s| {
        for w in 0..2u64 {
            let dir = &dir;
            let barrier = &barrier;
            s.spawn(move || {
                let mut store = Store::open(dir, 1).expect("open");
                barrier.wait();
                for batch in 0..8u64 {
                    let key = w * 1000 + batch;
                    store
                        .publish(vec![(key, Value::U64(key))])
                        .expect("publish");
                }
            });
        }
    });
    let mut store = Store::open(&dir, 1).expect("reopen verifies every segment");
    assert_eq!(store.record_count(), 16);
    for w in 0..2u64 {
        for batch in 0..8u64 {
            let key = w * 1000 + batch;
            assert_eq!(store.get(key), Some(&Value::U64(key)), "key {key}");
        }
    }
    // A live handle sees the other writer's segments after refresh.
    assert_eq!(store.refresh().expect("refresh"), 0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Racing claimants over the store's lock directory: exactly one wins per
/// name, every loser sees the claim, and release frees it — the contract
/// the shard `--missing` recovery path depends on.
#[test]
fn racing_store_claims_hand_out_each_name_once() {
    let dir = temp_dir("claims");
    let store = Store::open(&dir, 1).expect("open");
    let winners = std::sync::Mutex::new(Vec::new());
    let barrier = std::sync::Barrier::new(6);
    std::thread::scope(|s| {
        for worker in 0..6usize {
            let store = &store;
            let winners = &winners;
            let barrier = &barrier;
            s.spawn(move || {
                barrier.wait();
                for name in ["shard-0", "shard-1", "shard-2"] {
                    if let Ok(Some(guard)) = store.claim(name) {
                        winners.lock().unwrap().push((name, worker));
                        // Hold until the scope ends so no release/re-claim
                        // during the race.
                        std::mem::forget(guard);
                    }
                }
            });
        }
    });
    let mut won = winners.into_inner().unwrap();
    won.sort();
    let names: Vec<&str> = won.iter().map(|(n, _)| *n).collect();
    assert_eq!(names, vec!["shard-0", "shard-1", "shard-2"]);
    let _ = std::fs::remove_dir_all(&dir);
}
