//! Property and concurrency tests for the store: random value trees must
//! round-trip through segments, multi-segment append + compact must
//! preserve the key→value mapping exactly, and racing writers must never
//! corrupt each other.

use proptest::prelude::*;
use serde::Value;

use dsmt_store::{fnv1a64, IndexMode, Segment, SegmentHeader, Store};

/// A small random [`Value`] generator: scalars at the leaves, arrays and
/// objects down to `depth`. Floats are generated from bits so NaN and
/// infinities occur; object keys are drawn from a tiny pool so interning
/// gets exercised.
fn random_value(rng_bits: u64, depth: u32) -> Value {
    let kind = rng_bits % if depth == 0 { 6 } else { 8 };
    let payload = rng_bits / 8;
    match kind {
        0 => Value::Null,
        1 => Value::Bool(payload.is_multiple_of(2)),
        2 => Value::U64(payload),
        3 => Value::I64(payload as i64),
        4 => {
            let x = f64::from_bits(payload.rotate_left(17));
            Value::F64(x)
        }
        5 => Value::Str(format!("s{}", payload % 7)),
        6 => Value::Array(
            (0..payload % 4)
                .map(|i| random_value(payload.wrapping_mul(i + 3) ^ 0x9e37, depth - 1))
                .collect(),
        ),
        _ => Value::Object(
            (0..payload % 4)
                .map(|i| {
                    (
                        format!("k{}", (payload + i) % 5),
                        random_value(payload.wrapping_mul(i + 5) ^ 0x79b9, depth - 1),
                    )
                })
                .collect(),
        ),
    }
}

/// Bit-exact equality via re-encode (Value's PartialEq fails on NaN).
fn bits_equal(a: &Value, b: &Value) -> bool {
    let enc = |v: &Value| {
        let seg = Segment::new(vec![(0, v.clone())]);
        seg.encode()
    };
    enc(a) == enc(b)
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("dsmt-store-prop-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

proptest! {
    #[test]
    fn segments_round_trip_random_record_batches(
        seeds in prop::collection::vec(any::<u64>(), 0..12),
    ) {
        let records: Vec<(u64, Value)> = seeds
            .iter()
            .enumerate()
            .map(|(i, &s)| (i as u64, random_value(s, 3)))
            .collect();
        let seg = Segment::new(records);
        let bytes = seg.encode();
        let back = Segment::decode(&bytes).expect("decode");
        prop_assert_eq!(back.records.len(), seg.records.len());
        for ((ka, va), (kb, vb)) in seg.records.iter().zip(&back.records) {
            prop_assert_eq!(ka, kb);
            prop_assert!(bits_equal(va, vb));
        }
        // Canonical: re-encoding reproduces the bytes.
        prop_assert_eq!(back.encode(), bytes);
    }

    #[test]
    fn decoding_arbitrary_bytes_never_panics(
        bytes in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let _ = Segment::decode(&bytes);
    }

    #[test]
    fn append_then_compact_preserves_the_key_value_mapping(
        case in any::<u64>(),
        batches in prop::collection::vec(
            prop::collection::vec(any::<u64>(), 1..6),
            1..5,
        ),
    ) {
        let dir = temp_dir(&format!("append-compact-{case}"));
        let mut store = Store::open(&dir, 1).expect("open");
        // Publish batches whose keys overlap (key space 0..8): later
        // batches shadow earlier ones, like repeated sweeps over
        // overlapping grids.
        let mut expect: std::collections::HashMap<u64, Value> = Default::default();
        for (b, batch) in batches.iter().enumerate() {
            let records: Vec<(u64, Value)> = batch
                .iter()
                .map(|&s| (s % 8, random_value(s ^ (b as u64) << 40, 2)))
                .collect();
            for (k, v) in &records {
                expect.insert(*k, v.clone());
            }
            store.publish(records).expect("publish");
        }
        let check = |store: &Store| {
            for (k, v) in &expect {
                let got = store.get(*k).expect("key present");
                assert!(bits_equal(got, v), "key {k} mismatch");
            }
            assert_eq!(store.record_count(), expect.len());
        };
        check(&store);
        // Reload from disk: same mapping.
        let mut store = Store::open(&dir, 1).expect("reopen");
        check(&store);
        // Compact: same mapping, single segment.
        store.compact().expect("compact");
        check(&store);
        prop_assert_eq!(store.segment_count(), 1);
        // And once more from disk.
        let store = Store::open(&dir, 1).expect("reopen after compact");
        check(&store);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The v2 key-directory header must fully describe the records region
    /// for *any* batch: parsing the header alone (no record bytes
    /// consulted) recovers every key, a contiguous extent per record, and
    /// a per-record checksum matching the bytes actually stored there.
    #[test]
    fn headers_index_arbitrary_batches_without_decoding_records(
        seq in any::<u64>(),
        seeds in prop::collection::vec(any::<u64>(), 0..12),
    ) {
        let records: Vec<(u64, Value)> = seeds
            .iter()
            .enumerate()
            .map(|(i, &s)| (i as u64, random_value(s, 3)))
            .collect();
        let seg = Segment::new(records);
        let bytes = seg.encode_with_seq(seq);
        let header = SegmentHeader::parse(&bytes).expect("header parses");
        prop_assert_eq!(header.seq, seq);
        prop_assert_eq!(header.entries.len(), seg.records.len());
        let base = header.records_base as usize;
        prop_assert_eq!(
            header.records_len() as usize,
            bytes.len() - base - 8,
            "directory extents must cover the records region exactly",
        );
        for (entry, (key, _)) in header.entries.iter().zip(&seg.records) {
            prop_assert_eq!(entry.key, *key);
            let body = &bytes[base + entry.offset as usize..][..entry.len as usize];
            prop_assert_eq!(entry.fnv, fnv1a64(body), "per-record checksum");
        }
        // The full decode agrees with the header's view of the file.
        let (back, back_seq) = Segment::decode_with_seq(&bytes).expect("decode");
        prop_assert_eq!(back_seq, seq);
        prop_assert_eq!(back.records.len(), header.entries.len());
    }

    /// Flipping any single byte of the header region (everything the
    /// header checksum covers, prelude included) is fail-stop: the header
    /// no longer parses and the segment no longer decodes. No panic, no
    /// silently wrong index.
    #[test]
    fn corrupting_any_header_byte_is_fail_stop(
        seeds in prop::collection::vec(any::<u64>(), 1..8),
        victim in any::<u64>(),
    ) {
        let records: Vec<(u64, Value)> = seeds
            .iter()
            .enumerate()
            .map(|(i, &s)| (i as u64, random_value(s, 2)))
            .collect();
        let seg = Segment::new(records);
        let mut bytes = seg.encode_with_seq(9);
        let header = SegmentHeader::parse(&bytes).expect("pristine header parses");
        // Hashed region + its trailing checksum = [0, records_base).
        let pos = (victim % header.records_base) as usize;
        bytes[pos] ^= 0x40;
        prop_assert!(SegmentHeader::parse(&bytes).is_err(), "byte {pos}");
        prop_assert!(Segment::decode(&bytes).is_err(), "byte {pos}");
    }

    /// A store opened lazily (header index only) and one opened eagerly
    /// (decode everything up front) must agree on every record, bit for
    /// bit — lazy decode is an optimization, never a semantic change.
    #[test]
    fn lazy_and_eager_opens_agree_on_every_record(
        case in any::<u64>(),
        batches in prop::collection::vec(
            prop::collection::vec(any::<u64>(), 1..5),
            1..4,
        ),
    ) {
        let dir = temp_dir(&format!("lazy-eager-{case}"));
        let mut store = Store::open_with(&dir, 1, IndexMode::Indexed).expect("open");
        let mut keys = std::collections::HashSet::new();
        for (b, batch) in batches.iter().enumerate() {
            let records: Vec<(u64, Value)> = batch
                .iter()
                .map(|&s| (s % 6, random_value(s ^ (b as u64) << 40, 2)))
                .collect();
            keys.extend(records.iter().map(|(k, _)| *k));
            store.publish(records).expect("publish");
        }
        let lazy = Store::open_with(&dir, 1, IndexMode::Indexed).expect("lazy open");
        let eager = Store::open_with(&dir, 1, IndexMode::Eager).expect("eager open");
        prop_assert_eq!(lazy.record_count(), eager.record_count());
        for &k in &keys {
            let a = lazy.get(k).expect("lazy has key");
            let b = eager.get(k).expect("eager has key");
            prop_assert!(bits_equal(a, b), "key {k} diverged between modes");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// A hand-crafted v2 segment whose directory claims more record bytes
/// than the file holds — with *valid* header and file checksums, so only
/// the bounds check can catch it — must be rejected both by the segment
/// decoder and by an indexed store open.
#[test]
fn directory_extents_past_the_records_region_are_rejected() {
    // magic | version 2 | seq | n_strings=0 | n_records=1
    // | entry { key, offset 0, len 64, fnv } | header_fnv
    // | 8-byte records region (too short for len 64) | file_fnv
    let mut bytes = Vec::new();
    bytes.extend_from_slice(b"DSRS");
    bytes.extend_from_slice(&2u32.to_le_bytes());
    bytes.extend_from_slice(&1u64.to_le_bytes()); // seq
    bytes.push(0); // n_strings = 0
    bytes.push(1); // n_records = 1
    bytes.extend_from_slice(&7u64.to_le_bytes()); // key
    bytes.push(0); // offset uvarint
    bytes.push(64); // len uvarint: claims 64 bytes
    let body = [0u8; 8]; // ...but only 8 exist
    bytes.extend_from_slice(&fnv1a64(&body).to_le_bytes()); // record fnv
    let header_fnv = fnv1a64(&bytes);
    bytes.extend_from_slice(&header_fnv.to_le_bytes());
    bytes.extend_from_slice(&body);
    let file_fnv = fnv1a64(&bytes);
    bytes.extend_from_slice(&file_fnv.to_le_bytes());

    // The header itself parses (offsets are contiguous, checksums hold) —
    // the lie is only visible against the file length.
    let header = SegmentHeader::parse(&bytes).expect("header checksums hold");
    assert_eq!(header.records_len(), 64);
    assert!(Segment::decode(&bytes).is_err(), "decode must bounds-check");

    let dir = temp_dir("oob-extent");
    drop(Store::open(&dir, 1).expect("create"));
    let name = format!("seg-{:016x}.dsrs", fnv1a64(&bytes));
    std::fs::write(dir.join("segments").join(name), &bytes).unwrap();
    for mode in [IndexMode::Indexed, IndexMode::Eager] {
        let err = Store::open_with(&dir, 1, mode).expect_err("open must fail-stop");
        assert!(
            err.to_string().contains("seg-"),
            "error names the bad segment: {err}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Two writers publishing concurrently into one store directory (separate
/// `Store` handles, like two shard processes sharing a cache mount) must
/// both land, verify, and be visible after a refresh.
#[test]
fn concurrent_writers_never_corrupt_the_store() {
    let dir = temp_dir("two-writers");
    drop(Store::open(&dir, 1).expect("create"));
    let barrier = std::sync::Barrier::new(2);
    std::thread::scope(|s| {
        for w in 0..2u64 {
            let dir = &dir;
            let barrier = &barrier;
            s.spawn(move || {
                let mut store = Store::open(dir, 1).expect("open");
                barrier.wait();
                for batch in 0..8u64 {
                    let key = w * 1000 + batch;
                    store
                        .publish(vec![(key, Value::U64(key))])
                        .expect("publish");
                }
            });
        }
    });
    let mut store = Store::open(&dir, 1).expect("reopen verifies every segment");
    assert_eq!(store.record_count(), 16);
    for w in 0..2u64 {
        for batch in 0..8u64 {
            let key = w * 1000 + batch;
            assert_eq!(store.get(key), Some(&Value::U64(key)), "key {key}");
        }
    }
    // A live handle sees the other writer's segments after refresh.
    assert_eq!(store.refresh().expect("refresh"), 0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Racing claimants over the store's lock directory: exactly one wins per
/// name, every loser sees the claim, and release frees it — the contract
/// the shard `--missing` recovery path depends on.
#[test]
fn racing_store_claims_hand_out_each_name_once() {
    let dir = temp_dir("claims");
    let store = Store::open(&dir, 1).expect("open");
    let winners = std::sync::Mutex::new(Vec::new());
    let barrier = std::sync::Barrier::new(6);
    std::thread::scope(|s| {
        for worker in 0..6usize {
            let store = &store;
            let winners = &winners;
            let barrier = &barrier;
            s.spawn(move || {
                barrier.wait();
                for name in ["shard-0", "shard-1", "shard-2"] {
                    if let Ok(Some(guard)) = store.claim(name) {
                        winners.lock().unwrap().push((name, worker));
                        // Hold until the scope ends so no release/re-claim
                        // during the race.
                        std::mem::forget(guard);
                    }
                }
            });
        }
    });
    let mut won = winners.into_inner().unwrap();
    won.sort();
    let names: Vec<&str> = won.iter().map(|(n, _)| *n).collect();
    assert_eq!(names, vec!["shard-0", "shard-1", "shard-2"]);
    let _ = std::fs::remove_dir_all(&dir);
}
