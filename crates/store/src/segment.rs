//! Immutable, checksummed segment files (`.dsrs`).
//!
//! A segment is a batch of `(u64 key, Value)` records that were published
//! together — one sweep's cache misses, one migration, one compaction. Like
//! `.dsr` shard files, every decode error is fail-stop: a segment either
//! verifies completely or is rejected as a unit.
//!
//! ## Layout (integers little-endian; `varint` is LEB128 as in
//! [`dsmt_isa::varint`])
//!
//! ```text
//! magic     4 bytes   b"DSRS"
//! version   u32       SEGMENT_FORMAT_VERSION
//! n_strings varint    string table: every distinct field name / string
//! strings   n ×       varint length + UTF-8 bytes, first-use order
//! n_records varint
//! records   n ×       key u64 LE, value (codec encoding)
//! checksum  u64       FNV-1a over every preceding byte
//! ```
//!
//! Encoding is canonical (records in the order given, first-use string
//! table, shortest varints), so the same records always produce the same
//! bytes — which is what makes content-addressed segment names
//! ([`Segment::content_name`]) and idempotent re-publishes possible.

use bytes::{Buf, BufMut};
use dsmt_isa::varint::{get_uvarint, put_uvarint};
use serde::Value;

use crate::codec::{get_raw_str, get_value, put_raw_str, put_value, CodecError, StrTable};
use crate::fnv1a64;

/// Bumped on any change to the segment byte layout.
pub const SEGMENT_FORMAT_VERSION: u32 = 1;

const MAGIC: [u8; 4] = *b"DSRS";

/// An in-memory segment: the records it persists, in write order.
#[derive(Debug, Clone, PartialEq)]
pub struct Segment {
    /// The `(key, value)` records, in the order they were written.
    pub records: Vec<(u64, Value)>,
}

impl Segment {
    /// Packages records as a segment.
    #[must_use]
    pub fn new(records: Vec<(u64, Value)>) -> Self {
        Segment { records }
    }

    /// Serializes the segment to its canonical byte form.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut table = StrTable::default();
        for (_, value) in &self.records {
            table.collect(value);
        }
        let mut buf = Vec::with_capacity(64 + 64 * self.records.len());
        buf.put_slice(&MAGIC);
        buf.put_slice(&SEGMENT_FORMAT_VERSION.to_le_bytes());
        put_uvarint(&mut buf, table.strings().len() as u64);
        for s in table.strings() {
            put_raw_str(&mut buf, s);
        }
        put_uvarint(&mut buf, self.records.len() as u64);
        for (key, value) in &self.records {
            buf.put_u64_le(*key);
            put_value(&mut buf, value, &table);
        }
        buf.put_u64_le(fnv1a64(&buf));
        buf
    }

    /// Parses and fully verifies a segment byte image.
    ///
    /// # Errors
    ///
    /// A [`CodecError`] on any structural problem; checksum mismatches and
    /// truncation reject the whole segment — no partial decode is returned.
    pub fn decode(bytes: &[u8]) -> Result<Self, CodecError> {
        // Fixed header + two varints + checksum.
        if bytes.len() < MAGIC.len() + 4 + 2 + 8 {
            return Err(CodecError::Truncated);
        }
        let (content, tail) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(tail.try_into().expect("8-byte tail"));
        if fnv1a64(content) != stored {
            return Err(CodecError::Malformed(
                "segment checksum mismatch (corrupt or truncated file)".to_string(),
            ));
        }
        let mut buf = content;
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if magic != MAGIC {
            return Err(CodecError::Malformed(
                "not a .dsrs segment (bad magic)".to_string(),
            ));
        }
        let mut version = [0u8; 4];
        buf.copy_to_slice(&mut version);
        let version = u32::from_le_bytes(version);
        if version != SEGMENT_FORMAT_VERSION {
            return Err(CodecError::Malformed(format!(
                "unsupported segment version {version} (this build reads v{SEGMENT_FORMAT_VERSION})"
            )));
        }
        let n_strings = get_uvarint(&mut buf)?;
        let mut strings = Vec::new();
        for _ in 0..n_strings {
            strings.push(get_raw_str(&mut buf)?);
        }
        let n_records = get_uvarint(&mut buf)?;
        let mut records = Vec::new();
        for _ in 0..n_records {
            if buf.remaining() < 8 {
                return Err(CodecError::Truncated);
            }
            let key = buf.get_u64_le();
            records.push((key, get_value(&mut buf, &strings)?));
        }
        if buf.has_remaining() {
            return Err(CodecError::Malformed(format!(
                "{} trailing bytes after the last record",
                buf.remaining()
            )));
        }
        Ok(Segment { records })
    }

    /// The content-addressed file name for this segment's `bytes`
    /// (`seg-<fnv1a64 of the bytes, hex>.dsrs`). Identical record batches
    /// produce identical names, so a re-publish is idempotent.
    #[must_use]
    pub fn content_name(bytes: &[u8]) -> String {
        format!("seg-{:016x}.dsrs", fnv1a64(bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Segment {
        Segment::new(vec![
            (
                1,
                Value::Object(vec![
                    ("ipc".to_string(), Value::F64(2.5)),
                    ("cycles".to_string(), Value::U64(1000)),
                ]),
            ),
            (
                u64::MAX,
                Value::Object(vec![
                    ("ipc".to_string(), Value::F64(1.25)),
                    ("cycles".to_string(), Value::U64(2000)),
                ]),
            ),
        ])
    }

    #[test]
    fn encode_decode_round_trips_and_is_deterministic() {
        let seg = sample();
        let bytes = seg.encode();
        let back = Segment::decode(&bytes).expect("decode");
        assert_eq!(back, seg);
        assert_eq!(bytes, back.encode());
        // Field names are interned once: the second record costs indices,
        // not repeated strings.
        assert_eq!(bytes.windows(3).filter(|w| w == b"ipc").count(), 1);
    }

    #[test]
    fn corruption_truncation_and_version_skew_are_rejected() {
        let bytes = sample().encode();
        for pos in [0, 5, bytes.len() / 2, bytes.len() - 9] {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= 0x10;
            assert!(
                Segment::decode(&corrupt).is_err(),
                "bit flip at {pos} must be rejected"
            );
        }
        for keep in [0, 10, bytes.len() - 1] {
            assert!(
                Segment::decode(&bytes[..keep]).is_err(),
                "truncation to {keep} bytes must be rejected"
            );
        }
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(Segment::decode(&padded).is_err());
        // Version skew with a refreshed checksum reports precisely.
        let mut skew = bytes;
        skew[4] = 0xfe;
        let content_len = skew.len() - 8;
        let sum = fnv1a64(&skew[..content_len]);
        skew[content_len..].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            Segment::decode(&skew),
            Err(CodecError::Malformed(why)) if why.contains("version")
        ));
    }

    #[test]
    fn empty_segments_are_valid() {
        let seg = Segment::new(Vec::new());
        let bytes = seg.encode();
        assert_eq!(Segment::decode(&bytes).unwrap(), seg);
    }

    #[test]
    fn content_names_track_content() {
        let a = sample().encode();
        let mut other = sample();
        other.records[0].0 = 2;
        let b = other.encode();
        assert_ne!(Segment::content_name(&a), Segment::content_name(&b));
        assert_eq!(Segment::content_name(&a), Segment::content_name(&a));
        assert!(Segment::content_name(&a).starts_with("seg-"));
        assert!(Segment::content_name(&a).ends_with(".dsrs"));
    }
}
