//! Immutable, checksummed segment files (`.dsrs`).
//!
//! A segment is a batch of `(u64 key, Value)` records that were published
//! together — one sweep's cache misses, one migration, one compaction. Like
//! `.dsr` shard files, every decode error is fail-stop: a segment either
//! verifies completely or is rejected as a unit.
//!
//! ## v2 layout (integers little-endian; `varint` is LEB128 as in
//! [`dsmt_isa::varint`])
//!
//! ```text
//! magic      4 bytes   b"DSRS"
//! version    u32       SEGMENT_FORMAT_VERSION (2)
//! seq        u64       publish sequence number (precedence; see below)
//! n_strings  varint    string table: every distinct field name / string
//! strings    n ×       varint length + UTF-8 bytes, first-use order
//! n_records  varint
//! directory  n ×       key u64 LE, offset uvarint, len uvarint,
//!                      record_fnv u64 LE (FNV-1a of the record's bytes)
//! header_fnv u64       FNV-1a over every preceding byte
//! records    n ×       value (codec encoding), back to back; `offset`
//!                      in the directory is relative to this region
//! file_fnv   u64       FNV-1a over every preceding byte
//! ```
//!
//! Everything before the records region is the **header**: a store can
//! open a segment by reading and checksum-verifying the header alone —
//! O(keys), not O(bytes) — and decode individual records lazily from their
//! `(offset, len)` slice, verifying the per-record FNV at that point. The
//! trailing `file_fnv` lets an eager reader ([`Segment::decode`]) verify
//! the whole file in one pass, exactly like v1.
//!
//! The `seq` field makes shadow precedence a recorded fact instead of an
//! mtime artifact: a store stamps each published segment with
//! `max(seq seen) + 1`, and duplicate keys resolve to the segment with the
//! highest `(seq, mtime, name)`. Legacy v1 segments (headerless; decoded
//! eagerly) rank as `seq 0`, so they keep their old mtime order among
//! themselves and any v2 segment shadows them.
//!
//! Encoding is canonical (records in the order given, first-use string
//! table, shortest varints, contiguous record slices), so the same records
//! always produce the same bytes — *except* the `seq` field and the two
//! checksums, which segment **identity** ([`Segment::content_name`])
//! deliberately skips. Identical batches therefore still collapse to one
//! content-addressed file no matter when they were published; re-publishing
//! a batch rewrites the same file with a higher `seq`, re-asserting it as
//! the shadow winner.

use bytes::{Buf, BufMut};
use dsmt_isa::varint::{get_uvarint, put_uvarint};
use serde::Value;

use crate::codec::{get_raw_str, get_value, put_raw_str, put_value, CodecError, StrTable};
use crate::{fnv1a64, Fnv64};

/// Bumped on any change to the segment byte layout.
pub const SEGMENT_FORMAT_VERSION: u32 = 2;

/// The headerless layout this crate shipped first: no seq, no directory,
/// one trailing checksum. Still readable (eagerly); rewritten to the
/// current version by [`crate::Store::compact`].
pub const LEGACY_SEGMENT_FORMAT_VERSION: u32 = 1;

const MAGIC: [u8; 4] = *b"DSRS";

/// Fixed bytes before the string table: magic, version, seq.
const PRELUDE_LEN: usize = 4 + 4 + 8;

/// One key-directory entry: where a record's bytes live inside the records
/// region and what they must hash to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordEntry {
    /// The record's store key.
    pub key: u64,
    /// Byte offset of the record inside the records region.
    pub offset: u64,
    /// Encoded length of the record in bytes.
    pub len: u64,
    /// FNV-1a over exactly those bytes, verified on (lazy) decode.
    pub fnv: u64,
}

/// A parsed v2 segment header: everything [`crate::Store`] needs to index
/// a segment without touching its record bytes.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentHeader {
    /// Layout version (always [`SEGMENT_FORMAT_VERSION`] once parsed).
    pub version: u32,
    /// Publish sequence number (shadow precedence).
    pub seq: u64,
    /// The segment's string-intern table, needed to decode any record.
    pub strings: Vec<String>,
    /// Key directory, in record write order.
    pub entries: Vec<RecordEntry>,
    /// Absolute file offset of the records region (one past `header_fnv`).
    pub records_base: u64,
}

impl SegmentHeader {
    /// Parses and checksum-verifies a v2 header from a file *prefix*.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] when `prefix` ends before the header does
    /// — callers reading a bounded prefix should fetch more bytes and
    /// retry (unless the prefix already is the whole file, in which case
    /// the file is corrupt). Any other [`CodecError`] is fail-stop.
    pub fn parse(prefix: &[u8]) -> Result<Self, CodecError> {
        let mut buf = prefix;
        if buf.remaining() < PRELUDE_LEN {
            return Err(CodecError::Truncated);
        }
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if magic != MAGIC {
            return Err(CodecError::Malformed(
                "not a .dsrs segment (bad magic)".to_string(),
            ));
        }
        let mut version = [0u8; 4];
        buf.copy_to_slice(&mut version);
        let version = u32::from_le_bytes(version);
        if version != SEGMENT_FORMAT_VERSION {
            return Err(CodecError::Malformed(format!(
                "segment version {version} has no key-directory header \
                 (this build indexes v{SEGMENT_FORMAT_VERSION})"
            )));
        }
        let seq = buf.get_u64_le();
        let n_strings = get_uvarint(&mut buf)?;
        let mut strings = Vec::new();
        for _ in 0..n_strings {
            strings.push(get_raw_str(&mut buf)?);
        }
        let n_records = get_uvarint(&mut buf)?;
        // No up-front capacity: a corrupt count must not allocate ahead of
        // the checksum check. Each entry consumes ≥18 bytes, so growth is
        // bounded by the prefix actually read.
        let mut entries = Vec::new();
        for _ in 0..n_records {
            if buf.remaining() < 8 {
                return Err(CodecError::Truncated);
            }
            let key = buf.get_u64_le();
            let offset = get_uvarint(&mut buf)?;
            let len = get_uvarint(&mut buf)?;
            if buf.remaining() < 8 {
                return Err(CodecError::Truncated);
            }
            let fnv = buf.get_u64_le();
            entries.push(RecordEntry {
                key,
                offset,
                len,
                fnv,
            });
        }
        let hashed = prefix.len() - buf.remaining();
        if buf.remaining() < 8 {
            return Err(CodecError::Truncated);
        }
        let stored = buf.get_u64_le();
        if fnv1a64(&prefix[..hashed]) != stored {
            return Err(CodecError::Malformed(
                "segment header checksum mismatch (corrupt or truncated file)".to_string(),
            ));
        }
        // Canonical form: record slices are contiguous from offset 0.
        let mut expected = 0u64;
        for e in &entries {
            if e.offset != expected {
                return Err(CodecError::Malformed(format!(
                    "non-contiguous record directory (offset {} where {} was expected)",
                    e.offset, expected
                )));
            }
            expected = expected
                .checked_add(e.len)
                .ok_or_else(|| CodecError::Malformed("record extent overflows u64".to_string()))?;
        }
        Ok(SegmentHeader {
            version,
            seq,
            strings,
            entries,
            records_base: (hashed + 8) as u64,
        })
    }

    /// Total bytes of the records region the directory describes.
    #[must_use]
    pub fn records_len(&self) -> u64 {
        self.entries.iter().map(|e| e.len).sum()
    }
}

/// Reads the format version out of a segment file prefix (first 8 bytes),
/// checking the magic. This is how a reader decides between the header
/// path (v2) and the eager legacy path (v1) before parsing anything else.
///
/// # Errors
///
/// [`CodecError::Truncated`] under 8 bytes, [`CodecError::Malformed`] on a
/// bad magic.
pub fn peek_version(prefix: &[u8]) -> Result<u32, CodecError> {
    if prefix.len() < 8 {
        return Err(CodecError::Truncated);
    }
    if prefix[..4] != MAGIC {
        return Err(CodecError::Malformed(
            "not a .dsrs segment (bad magic)".to_string(),
        ));
    }
    Ok(u32::from_le_bytes(
        prefix[4..8].try_into().expect("4 bytes"),
    ))
}

/// An in-memory segment: the records it persists, in write order.
#[derive(Debug, Clone, PartialEq)]
pub struct Segment {
    /// The `(key, value)` records, in the order they were written.
    pub records: Vec<(u64, Value)>,
}

impl Segment {
    /// Packages records as a segment.
    #[must_use]
    pub fn new(records: Vec<(u64, Value)>) -> Self {
        Segment { records }
    }

    /// Serializes the segment to its canonical byte form with `seq 0`
    /// (equivalent to [`Segment::encode_with_seq`]`(0)`).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        self.encode_with_seq(0)
    }

    /// Serializes the segment to its canonical v2 byte form, stamping the
    /// given publish sequence number into the header.
    #[must_use]
    pub fn encode_with_seq(&self, seq: u64) -> Vec<u8> {
        let mut table = StrTable::default();
        for (_, value) in &self.records {
            table.collect(value);
        }
        // Encode record bodies first: the directory needs their extents
        // and checksums before the header can be written.
        let mut bodies: Vec<Vec<u8>> = Vec::with_capacity(self.records.len());
        for (_, value) in &self.records {
            let mut body = Vec::new();
            put_value(&mut body, value, &table);
            bodies.push(body);
        }
        let mut buf = Vec::with_capacity(64 + 64 * self.records.len());
        buf.put_slice(&MAGIC);
        buf.put_slice(&SEGMENT_FORMAT_VERSION.to_le_bytes());
        buf.put_u64_le(seq);
        put_uvarint(&mut buf, table.strings().len() as u64);
        for s in table.strings() {
            put_raw_str(&mut buf, s);
        }
        put_uvarint(&mut buf, self.records.len() as u64);
        let mut offset = 0u64;
        for ((key, _), body) in self.records.iter().zip(&bodies) {
            buf.put_u64_le(*key);
            put_uvarint(&mut buf, offset);
            put_uvarint(&mut buf, body.len() as u64);
            buf.put_u64_le(fnv1a64(body));
            offset += body.len() as u64;
        }
        buf.put_u64_le(fnv1a64(&buf));
        for body in &bodies {
            buf.put_slice(body);
        }
        buf.put_u64_le(fnv1a64(&buf));
        buf
    }

    /// Serializes the segment in the headerless v1 layout. Nothing in the
    /// write path uses this anymore — it exists so tests (and the
    /// migration story they pin) can fabricate the legacy files a
    /// pre-upgrade store left behind.
    #[must_use]
    pub fn encode_legacy(&self) -> Vec<u8> {
        let mut table = StrTable::default();
        for (_, value) in &self.records {
            table.collect(value);
        }
        let mut buf = Vec::with_capacity(64 + 64 * self.records.len());
        buf.put_slice(&MAGIC);
        buf.put_slice(&LEGACY_SEGMENT_FORMAT_VERSION.to_le_bytes());
        put_uvarint(&mut buf, table.strings().len() as u64);
        for s in table.strings() {
            put_raw_str(&mut buf, s);
        }
        put_uvarint(&mut buf, self.records.len() as u64);
        for (key, value) in &self.records {
            buf.put_u64_le(*key);
            put_value(&mut buf, value, &table);
        }
        buf.put_u64_le(fnv1a64(&buf));
        buf
    }

    /// Parses and fully verifies a segment byte image (either version),
    /// discarding the sequence number.
    ///
    /// # Errors
    ///
    /// A [`CodecError`] on any structural problem; checksum mismatches and
    /// truncation reject the whole segment — no partial decode is returned.
    pub fn decode(bytes: &[u8]) -> Result<Self, CodecError> {
        Self::decode_with_seq(bytes).map(|(segment, _)| segment)
    }

    /// Parses and fully verifies a segment byte image, returning the
    /// records and the recorded sequence number (`0` for legacy v1 files,
    /// which predate sequence numbers).
    ///
    /// # Errors
    ///
    /// As for [`Segment::decode`].
    pub fn decode_with_seq(bytes: &[u8]) -> Result<(Self, u64), CodecError> {
        match peek_version(bytes)? {
            LEGACY_SEGMENT_FORMAT_VERSION => Self::decode_v1(bytes).map(|s| (s, 0)),
            SEGMENT_FORMAT_VERSION => Self::decode_v2(bytes),
            other => Err(CodecError::Malformed(format!(
                "unsupported segment version {other} (this build reads \
                 v{LEGACY_SEGMENT_FORMAT_VERSION} and v{SEGMENT_FORMAT_VERSION})"
            ))),
        }
    }

    fn decode_v2(bytes: &[u8]) -> Result<(Self, u64), CodecError> {
        if bytes.len() < 8 {
            return Err(CodecError::Truncated);
        }
        let (content, tail) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(tail.try_into().expect("8-byte tail"));
        if fnv1a64(content) != stored {
            return Err(CodecError::Malformed(
                "segment checksum mismatch (corrupt or truncated file)".to_string(),
            ));
        }
        let header = SegmentHeader::parse(bytes)?;
        let base = usize::try_from(header.records_base)
            .map_err(|_| CodecError::Malformed("records region offset overflows".to_string()))?;
        let region = content.get(base..).ok_or(CodecError::Truncated)?;
        if header.records_len() != region.len() as u64 {
            return Err(CodecError::Malformed(format!(
                "records region is {} bytes but the directory describes {}",
                region.len(),
                header.records_len()
            )));
        }
        let mut records = Vec::with_capacity(header.entries.len());
        for e in &header.entries {
            let start = e.offset as usize;
            let end = start + e.len as usize;
            let body = &region[start..end];
            if fnv1a64(body) != e.fnv {
                return Err(CodecError::Malformed(format!(
                    "record 0x{:016x} failed its FNV check",
                    e.key
                )));
            }
            let mut slice = body;
            let value = get_value(&mut slice, &header.strings)?;
            if !slice.is_empty() {
                return Err(CodecError::Malformed(format!(
                    "record 0x{:016x} has {} trailing bytes",
                    e.key,
                    slice.len()
                )));
            }
            records.push((e.key, value));
        }
        Ok((Segment { records }, header.seq))
    }

    fn decode_v1(bytes: &[u8]) -> Result<Self, CodecError> {
        // Fixed header + two varints + checksum.
        if bytes.len() < MAGIC.len() + 4 + 2 + 8 {
            return Err(CodecError::Truncated);
        }
        let (content, tail) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(tail.try_into().expect("8-byte tail"));
        if fnv1a64(content) != stored {
            return Err(CodecError::Malformed(
                "segment checksum mismatch (corrupt or truncated file)".to_string(),
            ));
        }
        let mut buf = &content[8..]; // magic + version verified by peek
        let n_strings = get_uvarint(&mut buf)?;
        let mut strings = Vec::new();
        for _ in 0..n_strings {
            strings.push(get_raw_str(&mut buf)?);
        }
        let n_records = get_uvarint(&mut buf)?;
        let mut records = Vec::new();
        for _ in 0..n_records {
            if buf.remaining() < 8 {
                return Err(CodecError::Truncated);
            }
            let key = buf.get_u64_le();
            records.push((key, get_value(&mut buf, &strings)?));
        }
        if buf.has_remaining() {
            return Err(CodecError::Malformed(format!(
                "{} trailing bytes after the last record",
                buf.remaining()
            )));
        }
        Ok(Segment { records })
    }

    /// The content-addressed file name for this segment's `bytes`
    /// (`seg-<identity hash, hex>.dsrs`). For v2 bytes the identity hash
    /// skips the `seq` field and both checksums, so identical record
    /// batches produce identical names *no matter when they were
    /// published* — a re-publish is idempotent (it rewrites the same file
    /// with a fresher seq). Anything else (legacy v1 files, arbitrary
    /// bytes) hashes whole, preserving the names v1 stores already used.
    #[must_use]
    pub fn content_name(bytes: &[u8]) -> String {
        format!("seg-{:016x}.dsrs", identity_hash(bytes))
    }
}

/// The seq-independent identity hash behind [`Segment::content_name`].
fn identity_hash(bytes: &[u8]) -> u64 {
    v2_identity(bytes).unwrap_or_else(|| fnv1a64(bytes))
}

fn v2_identity(bytes: &[u8]) -> Option<u64> {
    if peek_version(bytes).ok()? != SEGMENT_FORMAT_VERSION {
        return None;
    }
    let header = SegmentHeader::parse(bytes).ok()?;
    let base = usize::try_from(header.records_base).ok()?;
    if bytes.len() < base + 8 {
        return None;
    }
    let mut h = Fnv64::new();
    h.update(&bytes[..8]); // magic + version
    h.update(&bytes[16..base - 8]); // strings + directory (skip seq)
    h.update(&bytes[base..bytes.len() - 8]); // records (skip both fnvs)
    Some(h.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Segment {
        Segment::new(vec![
            (
                1,
                Value::Object(vec![
                    ("ipc".to_string(), Value::F64(2.5)),
                    ("cycles".to_string(), Value::U64(1000)),
                ]),
            ),
            (
                u64::MAX,
                Value::Object(vec![
                    ("ipc".to_string(), Value::F64(1.25)),
                    ("cycles".to_string(), Value::U64(2000)),
                ]),
            ),
        ])
    }

    #[test]
    fn encode_decode_round_trips_and_is_deterministic() {
        let seg = sample();
        let bytes = seg.encode();
        let back = Segment::decode(&bytes).expect("decode");
        assert_eq!(back, seg);
        assert_eq!(bytes, back.encode());
        // Field names are interned once: the second record costs indices,
        // not repeated strings.
        assert_eq!(bytes.windows(3).filter(|w| w == b"ipc").count(), 1);
    }

    #[test]
    fn seq_round_trips_and_does_not_change_identity() {
        let seg = sample();
        let a = seg.encode_with_seq(1);
        let b = seg.encode_with_seq(999);
        assert_ne!(a, b, "seq is in the bytes");
        assert_eq!(
            Segment::content_name(&a),
            Segment::content_name(&b),
            "…but not in the identity"
        );
        let (back, seq) = Segment::decode_with_seq(&b).expect("decode");
        assert_eq!(back, seg);
        assert_eq!(seq, 999);
    }

    #[test]
    fn header_parse_indexes_without_touching_records() {
        let seg = sample();
        let bytes = seg.encode_with_seq(7);
        let header = SegmentHeader::parse(&bytes).expect("parse");
        assert_eq!(header.seq, 7);
        assert_eq!(header.entries.len(), 2);
        assert_eq!(header.entries[0].key, 1);
        assert_eq!(header.entries[1].key, u64::MAX);
        assert_eq!(header.entries[0].offset, 0);
        assert_eq!(
            header.records_base + header.records_len() + 8,
            bytes.len() as u64
        );
        // A prefix that stops anywhere inside the header asks for more
        // bytes rather than failing — the progressive-read contract.
        let base = header.records_base as usize;
        for keep in 0..base {
            assert!(
                matches!(
                    SegmentHeader::parse(&bytes[..keep]),
                    Err(CodecError::Truncated)
                ),
                "prefix of {keep} bytes must read as truncated"
            );
        }
        // The full header parses even when the record bytes are absent.
        assert_eq!(SegmentHeader::parse(&bytes[..base]).expect("hdr"), header);
    }

    #[test]
    fn corruption_truncation_and_version_skew_are_rejected() {
        let bytes = sample().encode();
        for pos in [0, 5, 20, bytes.len() / 2, bytes.len() - 9] {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= 0x10;
            assert!(
                Segment::decode(&corrupt).is_err(),
                "bit flip at {pos} must be rejected"
            );
        }
        for keep in [0, 10, bytes.len() - 1] {
            assert!(
                Segment::decode(&bytes[..keep]).is_err(),
                "truncation to {keep} bytes must be rejected"
            );
        }
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(Segment::decode(&padded).is_err());
        // Version skew with a refreshed checksum reports precisely.
        let mut skew = bytes;
        skew[4] = 0xfe;
        let content_len = skew.len() - 8;
        let sum = fnv1a64(&skew[..content_len]);
        skew[content_len..].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            Segment::decode(&skew),
            Err(CodecError::Malformed(why)) if why.contains("version")
        ));
    }

    #[test]
    fn legacy_v1_bytes_still_decode_and_still_reject_corruption() {
        let seg = sample();
        let bytes = seg.encode_legacy();
        assert_eq!(peek_version(&bytes).unwrap(), 1);
        let (back, seq) = Segment::decode_with_seq(&bytes).expect("decode v1");
        assert_eq!(back, seg);
        assert_eq!(seq, 0, "v1 predates sequence numbers");
        // v1 has no header to parse.
        assert!(SegmentHeader::parse(&bytes).is_err());
        for pos in [0, 5, bytes.len() / 2, bytes.len() - 1] {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= 0x10;
            assert!(Segment::decode(&corrupt).is_err(), "flip at {pos}");
        }
    }

    #[test]
    fn empty_segments_are_valid() {
        let seg = Segment::new(Vec::new());
        let bytes = seg.encode();
        assert_eq!(Segment::decode(&bytes).unwrap(), seg);
        let header = SegmentHeader::parse(&bytes).unwrap();
        assert!(header.entries.is_empty());
    }

    #[test]
    fn content_names_track_content() {
        let a = sample().encode();
        let mut other = sample();
        other.records[0].0 = 2;
        let b = other.encode();
        assert_ne!(Segment::content_name(&a), Segment::content_name(&b));
        assert_eq!(Segment::content_name(&a), Segment::content_name(&a));
        assert!(Segment::content_name(&a).starts_with("seg-"));
        assert!(Segment::content_name(&a).ends_with(".dsrs"));
    }
}
