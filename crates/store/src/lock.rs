//! Concurrent-writer safety: `O_EXCL` lockfile claims, stale-claim
//! stealing, and atomic publishes.

use std::path::{Path, PathBuf};
use std::time::{Duration, SystemTime};

/// Writes `bytes` to `path` atomically: a temp file in the same directory
/// (so the rename cannot cross filesystems) is written first, then renamed
/// over the destination. Readers never observe a partial file; concurrent
/// writers of identical content race harmlessly.
///
/// Parent directories are created as needed.
///
/// # Errors
///
/// The underlying I/O error if any step fails (the temp file is removed on
/// a failed rename).
pub fn atomic_write(path: impl AsRef<Path>, bytes: &[u8]) -> std::io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let file_name = path
        .file_name()
        .ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("{}: not a file path", path.display()),
            )
        })?
        .to_string_lossy();
    let tmp = path.with_file_name(format!(".{file_name}.tmp.{}", std::process::id()));
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path).inspect_err(|_| {
        let _ = std::fs::remove_file(&tmp);
    })
}

/// An exclusive claim on a named unit of work, backed by an `O_EXCL`
/// lockfile. Exactly one of any number of racing claimants wins; the claim
/// is released (the file removed) when the guard drops, so a finished —
/// or panicked-but-unwound — worker frees the name for the next claimant.
///
/// A claimant that dies without unwinding (SIGKILL, power loss) leaves the
/// lockfile behind; [`LockFile::acquire`] reports the holder recorded in
/// the file so an operator can decide whether the claim is stale, and
/// [`LockFile::acquire_or_steal`] automates that decision: a claim whose
/// lockfile mtime is older than a caller-chosen deadline is reaped and
/// re-claimed, with exactly one of any number of racing stealers winning.
///
/// # Example
///
/// ```
/// use dsmt_store::LockFile;
/// let dir = std::env::temp_dir().join(format!("lock-doc-{}", std::process::id()));
/// # let _ = std::fs::remove_dir_all(&dir);
/// let claim = LockFile::acquire(&dir, "shard-0").unwrap().expect("free");
/// // A second claimant loses while the guard lives...
/// assert!(LockFile::acquire(&dir, "shard-0").unwrap().is_none());
/// drop(claim);
/// // ...and wins after it drops.
/// assert!(LockFile::acquire(&dir, "shard-0").unwrap().is_some());
/// # let _ = std::fs::remove_dir_all(&dir);
/// ```
#[derive(Debug)]
pub struct LockFile {
    path: PathBuf,
    /// The `token <hex>` line this guard wrote into its lockfile. Release
    /// re-reads the file and only unlinks when the token still matches:
    /// a guard whose claim was *stolen* (its lockfile reaped and the name
    /// re-claimed by someone else) must not delete the new holder's live
    /// lockfile.
    token_line: String,
}

/// What an existing claim looks like from the outside: the holder record
/// written into the lockfile and the lockfile's age (mtime distance), the
/// two inputs of every staleness decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClaimInfo {
    /// The holder record (`pid <n>` as written by [`LockFile::acquire`],
    /// or `unknown holder` when the file was empty or unreadable).
    pub holder: String,
    /// Seconds since the lockfile was last modified, when measurable.
    pub age: Option<Duration>,
}

impl ClaimInfo {
    /// Renders `holder (heartbeat <age>s ago)` for reports and log lines.
    ///
    /// The lockfile's mtime doubles as the holder's heartbeat: acquisition
    /// writes the file (first beat) and a live holder re-touches it via
    /// [`LockFile::spawn_heartbeat`], so the age printed here is the time
    /// since the holder last proved it was alive.
    #[must_use]
    pub fn describe(&self) -> String {
        match self.age {
            Some(age) => format!("{} (heartbeat {}s ago)", self.holder, age.as_secs()),
            None => self.holder.clone(),
        }
    }
}

/// The outcome of [`LockFile::acquire_or_steal`].
#[derive(Debug)]
pub enum Claim {
    /// The name was free; the claim is ours.
    Acquired(LockFile),
    /// A stale claim was reaped and the name re-claimed; `previous` is the
    /// holder record of the dead claimant, for the caller's report.
    Stolen {
        /// The freshly acquired claim.
        lock: LockFile,
        /// Holder record of the reaped lockfile.
        previous: String,
    },
    /// Another claimant holds the name (and is younger than the steal
    /// deadline, or no deadline was given).
    Held(Option<ClaimInfo>),
}

impl Claim {
    /// The guard, if this attempt ended up holding the claim.
    #[must_use]
    pub fn lock(&self) -> Option<&LockFile> {
        match self {
            Claim::Acquired(lock) | Claim::Stolen { lock, .. } => Some(lock),
            Claim::Held(_) => None,
        }
    }
}

/// Distinguishes concurrent claims and steal tombstones within one
/// process (across processes the pid does).
static LOCK_NONCE: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// A token unique across processes and across acquires within a process:
/// pid, a per-process counter, and a wall-clock component (guards pid
/// reuse after reboots/exits).
fn fresh_token() -> String {
    let nonce = LOCK_NONCE.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let nanos = SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_nanos())
        .unwrap_or(0);
    format!("{:x}-{nonce:x}-{nanos:x}", std::process::id())
}

impl LockFile {
    /// Tries to claim `name` under `dir` (created if needed). Returns
    /// `Ok(Some(guard))` on success and `Ok(None)` when another claimant
    /// already holds the name.
    ///
    /// # Errors
    ///
    /// Any I/O error other than the lock already existing.
    pub fn acquire(dir: impl AsRef<Path>, name: &str) -> std::io::Result<Option<LockFile>> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{name}.lock"));
        match std::fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&path)
        {
            Ok(file) => {
                // Best-effort holder record: line 1 identifies the holder
                // for diagnostics, line 2 carries the ownership token the
                // release check verifies.
                use std::io::Write;
                let mut file = file;
                let token_line = format!("token {}", fresh_token());
                let _ = writeln!(file, "pid {}", std::process::id());
                let _ = writeln!(file, "{token_line}");
                dsmt_obs::counter!("store.locks_acquired").inc();
                Ok(Some(LockFile { path, token_line }))
            }
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// The lockfile's path (for diagnostics).
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The recorded holder of an existing lock on `name`, if any — for
    /// "who has this claim?" diagnostics when [`LockFile::acquire`]
    /// returns `None`. Only the holder line is returned; the ownership
    /// token stays an implementation detail.
    #[must_use]
    pub fn holder(dir: impl AsRef<Path>, name: &str) -> Option<String> {
        let path = dir.as_ref().join(format!("{name}.lock"));
        std::fs::read_to_string(path)
            .ok()
            .map(|s| s.lines().next().unwrap_or("").trim().to_string())
    }

    /// Holder record and age of an existing claim on `name`, if any — the
    /// inputs to a staleness decision, and what `dsmt shard status` prints
    /// for claimed shards.
    #[must_use]
    pub fn inspect(dir: impl AsRef<Path>, name: &str) -> Option<ClaimInfo> {
        let path = dir.as_ref().join(format!("{name}.lock"));
        let holder = std::fs::read_to_string(&path)
            .ok()?
            .lines()
            .next()
            .unwrap_or("")
            .trim()
            .to_string();
        let holder = if holder.is_empty() {
            "unknown holder".to_string()
        } else {
            holder
        };
        let age = std::fs::metadata(&path)
            .ok()
            .and_then(|m| m.modified().ok())
            .and_then(|t| SystemTime::now().duration_since(t).ok());
        Some(ClaimInfo { holder, age })
    }

    /// Like [`LockFile::acquire`], but with self-healing: when the name is
    /// held by a lockfile whose mtime is at least `steal_after` old, the
    /// claim is presumed dead (its holder exited without unwinding — the
    /// `Drop` release never ran) and is **stolen**: the stale file is
    /// atomically renamed aside, so exactly one of any number of racing
    /// stealers reaps it, and the name is then re-claimed under the normal
    /// `O_EXCL` rules.
    ///
    /// With `steal_after = None` this never steals and is equivalent to
    /// [`LockFile::acquire`] plus a [`ClaimInfo`] on the held path.
    ///
    /// Pick a deadline comfortably longer than the longest legitimate hold
    /// of the claim: a claim is "stale" purely by lockfile age, so a
    /// deadline shorter than honest work invites double execution. As a
    /// belt-and-braces guard against the tiny stat-to-rename race, a
    /// reaped file whose mtime turns out to be fresh is put back (or
    /// dropped if the name was re-claimed meanwhile) and the attempt
    /// reports [`Claim::Held`].
    ///
    /// # Errors
    ///
    /// Any I/O error other than the expected already-exists /
    /// already-reaped races.
    pub fn acquire_or_steal(
        dir: impl AsRef<Path>,
        name: &str,
        steal_after: Option<Duration>,
    ) -> std::io::Result<Claim> {
        let dir = dir.as_ref();
        if let Some(lock) = Self::acquire(dir, name)? {
            return Ok(Claim::Acquired(lock));
        }
        let Some(deadline) = steal_after else {
            return Ok(Claim::Held(Self::inspect(dir, name)));
        };
        let path = dir.join(format!("{name}.lock"));
        let age = match std::fs::metadata(&path) {
            Ok(meta) => meta
                .modified()
                .ok()
                .and_then(|t| SystemTime::now().duration_since(t).ok()),
            // Released between the acquire and the stat: race for it again.
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok(match Self::acquire(dir, name)? {
                    Some(lock) => Claim::Acquired(lock),
                    None => Claim::Held(Self::inspect(dir, name)),
                });
            }
            Err(e) => return Err(e),
        };
        if age.is_none_or(|age| age < deadline) {
            return Ok(Claim::Held(Self::inspect(dir, name)));
        }
        let previous = Self::inspect(dir, name)
            .map(|i| i.describe())
            .unwrap_or_else(|| "unknown holder".to_string());
        // Reap via rename: of N racing stealers, exactly one moves the
        // stale file aside; the rest see NotFound and fall through to the
        // plain O_EXCL race below.
        let nonce = LOCK_NONCE.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let tomb = dir.join(format!(
            ".{name}.lock.stale.{}.{nonce:x}",
            std::process::id()
        ));
        match std::fs::rename(&path, &tomb) {
            Ok(()) => {
                // Re-verify: if the reaped file's mtime is fresh, a new
                // claimant slipped in between the stat and the rename and
                // we yanked a *live* claim. Put it back via hard_link
                // (atomic create-if-absent; a plain rename could clobber
                // an even newer claim) and report the name as held.
                let fresh = std::fs::metadata(&tomb)
                    .ok()
                    .and_then(|m| m.modified().ok())
                    .and_then(|t| SystemTime::now().duration_since(t).ok())
                    .is_none_or(|age| age < deadline);
                if fresh {
                    let _ = std::fs::hard_link(&tomb, &path);
                    let _ = std::fs::remove_file(&tomb);
                    return Ok(Claim::Held(Self::inspect(dir, name)));
                }
                let _ = std::fs::remove_file(&tomb);
            }
            // Another stealer reaped it first; the name may be free now.
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        Ok(match Self::acquire(dir, name)? {
            Some(lock) => {
                dsmt_obs::counter!("store.locks_stolen").inc();
                Claim::Stolen { lock, previous }
            }
            None => Claim::Held(Self::inspect(dir, name)),
        })
    }

    /// Backdates the lockfile of an existing claim on `name` so that an
    /// [`LockFile::acquire_or_steal`] with a deadline of `age` or less will
    /// treat it as stale. Test-support only: simulating a worker that died
    /// holding a claim without actually killing a process.
    #[doc(hidden)]
    pub fn backdate_for_tests(dir: impl AsRef<Path>, name: &str, age: Duration) {
        let path = dir.as_ref().join(format!("{name}.lock"));
        if let Ok(f) = std::fs::OpenOptions::new().write(true).open(&path) {
            let _ = f.set_modified(SystemTime::now() - age);
        }
    }

    /// Starts a background thread that re-touches this claim's lockfile
    /// mtime every `interval`, proving the holder alive, so fleets can run
    /// short [`LockFile::acquire_or_steal`] deadlines regardless of how
    /// long honest work on the claim takes. The beat stops when the
    /// returned [`Heartbeat`] guard drops (drop it *before* releasing the
    /// claim) — or on its own when the lockfile no longer carries this
    /// guard's ownership token, so a holder whose claim was stolen can
    /// never freshen the thief's lockfile.
    #[must_use]
    pub fn spawn_heartbeat(&self, interval: Duration) -> Heartbeat {
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let beats = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        let path = self.path.clone();
        let token_line = self.token_line.clone();
        let handle = {
            let stop = std::sync::Arc::clone(&stop);
            let beats = std::sync::Arc::clone(&beats);
            std::thread::spawn(move || {
                use std::sync::atomic::Ordering;
                let tick = Duration::from_millis(25);
                let mut since_beat = Duration::ZERO;
                while !stop.load(Ordering::Relaxed) {
                    std::thread::sleep(tick);
                    since_beat += tick;
                    if since_beat < interval {
                        continue;
                    }
                    since_beat = Duration::ZERO;
                    // Ownership check: only freshen a lockfile that still
                    // carries our token. Anything else means the claim was
                    // stolen or released under us — stop beating.
                    let ours = std::fs::read_to_string(&path)
                        .is_ok_and(|s| s.lines().any(|line| line.trim() == token_line));
                    if !ours {
                        dsmt_obs::warn!(
                            "store.heartbeat_lost_claim",
                            lock = path.display().to_string()
                        );
                        return;
                    }
                    if let Ok(f) = std::fs::OpenOptions::new().write(true).open(&path) {
                        let _ = f.set_modified(SystemTime::now());
                        beats.fetch_add(1, Ordering::Relaxed);
                        dsmt_obs::counter!("store.heartbeats").inc();
                    }
                }
            })
        };
        Heartbeat {
            stop,
            beats,
            handle: Some(handle),
        }
    }
}

/// A running claim heartbeat (see [`LockFile::spawn_heartbeat`]). Dropping
/// it stops and joins the beat thread.
#[derive(Debug)]
pub struct Heartbeat {
    stop: std::sync::Arc<std::sync::atomic::AtomicBool>,
    beats: std::sync::Arc<std::sync::atomic::AtomicU64>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Heartbeat {
    /// Number of mtime touches performed so far.
    #[must_use]
    pub fn beats(&self) -> u64 {
        self.beats.load(std::sync::atomic::Ordering::Relaxed)
    }
}

impl Drop for Heartbeat {
    fn drop(&mut self) {
        self.stop.store(true, std::sync::atomic::Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for LockFile {
    fn drop(&mut self) {
        // Release only what we still own: after a steal, the displaced
        // holder's guard points at a path now occupied by the stealer's
        // lockfile, and unlinking it would silently collapse the mutual
        // exclusion for every later claimant. The token check shrinks
        // that hazard from "the rest of the displaced worker's runtime"
        // to the microseconds between read and unlink.
        let ours = std::fs::read_to_string(&self.path)
            .is_ok_and(|s| s.lines().any(|line| line.trim() == self.token_line));
        if ours {
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dsmt-lock-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn atomic_write_replaces_and_creates_parents() {
        let dir = temp_dir("aw");
        let path = dir.join("nested/out.bin");
        atomic_write(&path, b"first").expect("write");
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        atomic_write(&path, b"second").expect("overwrite");
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        // No temp litter left behind.
        let entries: Vec<_> = std::fs::read_dir(path.parent().unwrap())
            .unwrap()
            .filter_map(Result::ok)
            .collect();
        assert_eq!(entries.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn second_claim_loses_until_release() {
        let dir = temp_dir("claim");
        let first = LockFile::acquire(&dir, "shard-0")
            .expect("io")
            .expect("claim");
        assert!(LockFile::acquire(&dir, "shard-0").expect("io").is_none());
        // A different name is independent.
        assert!(LockFile::acquire(&dir, "shard-1").expect("io").is_some());
        let holder = LockFile::holder(&dir, "shard-0").expect("holder recorded");
        assert!(holder.contains(&std::process::id().to_string()));
        drop(first);
        assert!(LockFile::acquire(&dir, "shard-0").expect("io").is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dead_holder_claims_are_stolen_after_the_deadline() {
        let dir = temp_dir("steal");
        // Simulate a worker that died without unwinding: take the claim and
        // leak the guard, so the Drop release never runs.
        let dead = LockFile::acquire(&dir, "shard-3").unwrap().expect("claim");
        std::mem::forget(dead);
        LockFile::backdate_for_tests(&dir, "shard-3", Duration::from_secs(3600));

        // Under the deadline the claim still reads as held...
        match LockFile::acquire_or_steal(&dir, "shard-3", Some(Duration::from_secs(7200))).unwrap()
        {
            Claim::Held(Some(info)) => {
                assert!(info.holder.contains(&std::process::id().to_string()));
                assert!(info.age.expect("age measurable") >= Duration::from_secs(3600));
                assert!(
                    info.describe().contains("heartbeat") && info.describe().contains("s ago"),
                    "{}",
                    info.describe()
                );
            }
            other => panic!("expected Held, got {other:?}"),
        }
        // ...past the deadline it is reaped, naming the dead holder.
        match LockFile::acquire_or_steal(&dir, "shard-3", Some(Duration::from_secs(60))).unwrap() {
            Claim::Stolen { lock, previous } => {
                assert!(previous.contains(&std::process::id().to_string()));
                drop(lock);
            }
            other => panic!("expected Stolen, got {other:?}"),
        }
        // The steal released cleanly: the name is free again.
        assert!(LockFile::acquire(&dir, "shard-3").unwrap().is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn live_claims_are_never_stolen_early() {
        let dir = temp_dir("no-early-steal");
        let live = LockFile::acquire(&dir, "busy").unwrap().expect("claim");
        // A live (fresh-mtime) claim survives both a no-deadline attempt
        // and one with a deadline it has not reached.
        for steal_after in [None, Some(Duration::from_secs(60))] {
            match LockFile::acquire_or_steal(&dir, "busy", steal_after).unwrap() {
                Claim::Held(Some(info)) => {
                    assert!(info.holder.contains(&std::process::id().to_string()));
                }
                other => panic!("expected Held under {steal_after:?}, got {other:?}"),
            }
        }
        drop(live);
        // Once released, the same call acquires normally (no steal).
        match LockFile::acquire_or_steal(&dir, "busy", Some(Duration::from_secs(60))).unwrap() {
            Claim::Acquired(_) => {}
            other => panic!("expected Acquired, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_displaced_holders_release_cannot_delete_the_stealers_lock() {
        let dir = temp_dir("displaced");
        // A slow (but alive) worker whose claim outlives the deadline —
        // the operator picked a steal_after shorter than the shard's
        // honest runtime.
        let slow = LockFile::acquire(&dir, "shard-9").unwrap().expect("claim");
        LockFile::backdate_for_tests(&dir, "shard-9", Duration::from_secs(3600));
        let stolen =
            match LockFile::acquire_or_steal(&dir, "shard-9", Some(Duration::from_secs(60)))
                .unwrap()
            {
                Claim::Stolen { lock, .. } => lock,
                other => panic!("expected Stolen, got {other:?}"),
            };
        // The displaced worker finishes and releases: the token check must
        // leave the stealer's live lockfile alone...
        drop(slow);
        assert!(stolen.path().exists(), "stealer's lockfile survives");
        // ...so a third claimant still loses while the stealer works.
        assert!(LockFile::acquire(&dir, "shard-9").unwrap().is_none());
        // The stealer's own release does remove it.
        drop(stolen);
        assert!(LockFile::acquire(&dir, "shard-9").unwrap().is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn eight_racing_stealers_exactly_one_wins() {
        let dir = temp_dir("steal-race");
        let dead = LockFile::acquire(&dir, "contended")
            .unwrap()
            .expect("claim");
        std::mem::forget(dead);
        LockFile::backdate_for_tests(&dir, "contended", Duration::from_secs(3600));

        let barrier = std::sync::Barrier::new(8);
        // Every thread returns its Claim so no guard is released until all
        // attempts finished — a loser can never find the name freed by a
        // fast winner, only held or stale.
        let claims: Vec<Claim> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    s.spawn(|| {
                        barrier.wait();
                        LockFile::acquire_or_steal(&dir, "contended", Some(Duration::from_secs(60)))
                            .expect("io")
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let wins = claims.iter().filter(|c| c.lock().is_some()).count();
        assert_eq!(wins, 1, "exactly one of 8 racing stealers may win");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn heartbeat_keeps_a_claim_looking_fresh() {
        let dir = temp_dir("heartbeat");
        let claim = LockFile::acquire(&dir, "beating").unwrap().expect("claim");
        // Make the claim look long-dead, then let the heartbeat revive it.
        LockFile::backdate_for_tests(&dir, "beating", Duration::from_secs(3600));
        let hb = claim.spawn_heartbeat(Duration::from_millis(50));
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while hb.beats() == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(hb.beats() > 0, "heartbeat never fired");
        let info = LockFile::inspect(&dir, "beating").expect("claim inspectable");
        assert!(
            info.age.expect("age measurable") < Duration::from_secs(3600),
            "heartbeat did not refresh the mtime: {info:?}"
        );
        // A freshly-beating claim is never stolen, even under a deadline
        // far shorter than the claim's total age.
        match LockFile::acquire_or_steal(&dir, "beating", Some(Duration::from_secs(60))).unwrap() {
            Claim::Held(_) => {}
            other => panic!("expected Held while beating, got {other:?}"),
        }
        drop(hb);
        drop(claim);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn heartbeat_stops_touching_after_its_claim_is_stolen() {
        let dir = temp_dir("heartbeat-stolen");
        let claim = LockFile::acquire(&dir, "victim").unwrap().expect("claim");
        let hb = claim.spawn_heartbeat(Duration::from_millis(50));
        // Steal the claim out from under the beating holder.
        LockFile::backdate_for_tests(&dir, "victim", Duration::from_secs(3600));
        let stolen = match LockFile::acquire_or_steal(&dir, "victim", Some(Duration::from_secs(60)))
            .unwrap()
        {
            Claim::Stolen { lock, .. } => lock,
            other => panic!("expected Stolen, got {other:?}"),
        };
        // The old heartbeat must see the foreign token and stop: the
        // thief's lockfile mtime stays where the thief put it. Give the
        // beat thread a few intervals to notice, then verify the beat
        // count stays flat.
        std::thread::sleep(Duration::from_millis(200));
        let beats_then = hb.beats();
        std::thread::sleep(Duration::from_millis(200));
        assert_eq!(
            hb.beats(),
            beats_then,
            "displaced holder's heartbeat kept beating on the thief's lockfile"
        );
        drop(hb);
        drop(claim);
        assert!(stolen.path().exists(), "thief's lockfile survives");
        drop(stolen);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn racing_threads_get_exactly_one_claim() {
        let dir = temp_dir("race");
        std::fs::create_dir_all(&dir).unwrap();
        let barrier = std::sync::Barrier::new(8);
        let wins: usize = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    s.spawn(|| {
                        barrier.wait();
                        LockFile::acquire(&dir, "contended")
                            .expect("io")
                            .map(|guard| {
                                // Hold the claim across the race window.
                                std::thread::sleep(std::time::Duration::from_millis(20));
                                drop(guard);
                            })
                            .is_some() as usize
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(wins, 1, "exactly one of 8 racing claimants may win");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
