//! Concurrent-writer safety: `O_EXCL` lockfile claims and atomic publishes.

use std::path::{Path, PathBuf};

/// Writes `bytes` to `path` atomically: a temp file in the same directory
/// (so the rename cannot cross filesystems) is written first, then renamed
/// over the destination. Readers never observe a partial file; concurrent
/// writers of identical content race harmlessly.
///
/// Parent directories are created as needed.
///
/// # Errors
///
/// The underlying I/O error if any step fails (the temp file is removed on
/// a failed rename).
pub fn atomic_write(path: impl AsRef<Path>, bytes: &[u8]) -> std::io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let file_name = path
        .file_name()
        .ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("{}: not a file path", path.display()),
            )
        })?
        .to_string_lossy();
    let tmp = path.with_file_name(format!(".{file_name}.tmp.{}", std::process::id()));
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path).inspect_err(|_| {
        let _ = std::fs::remove_file(&tmp);
    })
}

/// An exclusive claim on a named unit of work, backed by an `O_EXCL`
/// lockfile. Exactly one of any number of racing claimants wins; the claim
/// is released (the file removed) when the guard drops, so a finished —
/// or panicked-but-unwound — worker frees the name for the next claimant.
///
/// A claimant that dies without unwinding (SIGKILL, power loss) leaves the
/// lockfile behind; [`LockFile::acquire`] reports the holder recorded in
/// the file so an operator can decide whether the claim is stale.
#[derive(Debug)]
pub struct LockFile {
    path: PathBuf,
}

impl LockFile {
    /// Tries to claim `name` under `dir` (created if needed). Returns
    /// `Ok(Some(guard))` on success and `Ok(None)` when another claimant
    /// already holds the name.
    ///
    /// # Errors
    ///
    /// Any I/O error other than the lock already existing.
    pub fn acquire(dir: impl AsRef<Path>, name: &str) -> std::io::Result<Option<LockFile>> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{name}.lock"));
        match std::fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&path)
        {
            Ok(file) => {
                // Best-effort holder record for stale-lock diagnostics.
                use std::io::Write;
                let mut file = file;
                let _ = writeln!(file, "pid {}", std::process::id());
                Ok(Some(LockFile { path }))
            }
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// The lockfile's path (for diagnostics).
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The recorded holder of an existing lock on `name`, if any — for
    /// "who has this claim?" diagnostics when [`LockFile::acquire`]
    /// returns `None`.
    #[must_use]
    pub fn holder(dir: impl AsRef<Path>, name: &str) -> Option<String> {
        let path = dir.as_ref().join(format!("{name}.lock"));
        std::fs::read_to_string(path)
            .ok()
            .map(|s| s.trim().to_string())
    }
}

impl Drop for LockFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dsmt-lock-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn atomic_write_replaces_and_creates_parents() {
        let dir = temp_dir("aw");
        let path = dir.join("nested/out.bin");
        atomic_write(&path, b"first").expect("write");
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        atomic_write(&path, b"second").expect("overwrite");
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        // No temp litter left behind.
        let entries: Vec<_> = std::fs::read_dir(path.parent().unwrap())
            .unwrap()
            .filter_map(Result::ok)
            .collect();
        assert_eq!(entries.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn second_claim_loses_until_release() {
        let dir = temp_dir("claim");
        let first = LockFile::acquire(&dir, "shard-0")
            .expect("io")
            .expect("claim");
        assert!(LockFile::acquire(&dir, "shard-0").expect("io").is_none());
        // A different name is independent.
        assert!(LockFile::acquire(&dir, "shard-1").expect("io").is_some());
        let holder = LockFile::holder(&dir, "shard-0").expect("holder recorded");
        assert!(holder.contains(&std::process::id().to_string()));
        drop(first);
        assert!(LockFile::acquire(&dir, "shard-0").expect("io").is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn racing_threads_get_exactly_one_claim() {
        let dir = temp_dir("race");
        std::fs::create_dir_all(&dir).unwrap();
        let barrier = std::sync::Barrier::new(8);
        let wins: usize = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    s.spawn(|| {
                        barrier.wait();
                        LockFile::acquire(&dir, "contended")
                            .expect("io")
                            .map(|guard| {
                                // Hold the claim across the race window.
                                std::thread::sleep(std::time::Duration::from_millis(20));
                                drop(guard);
                            })
                            .is_some() as usize
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(wins, 1, "exactly one of 8 racing claimants may win");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
