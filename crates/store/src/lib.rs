//! # dsmt-store
//!
//! The shared **result-persistence layer** of the sweep system. Before this
//! crate existed, simulation results were persisted three incompatible ways:
//! the sweep cache wrote one pretty-JSON file per scenario, the shard
//! subsystem packed `.dsr` files with its own private codec, and exports
//! re-serialized everything again. `dsmt-store` unifies them behind one
//! codec and one checksum discipline:
//!
//! * [`codec`] — the canonical tagged binary encoding of serde [`Value`]
//!   trees (string-interned, shortest-varint, exact float bits). Both the
//!   `.dsr` shard format and the store's segments encode values with it, so
//!   the bytes of a record are the same wherever it is persisted.
//! * [`segment`] — immutable, checksummed **segment files** (`.dsrs`): a
//!   batch of `(key, value)` records sharing one string-intern table. A
//!   segment is written once, named by the FNV-1a hash of its own bytes
//!   (content addressing), and published with an atomic rename — readers
//!   never observe a partial segment.
//! * [`store`] — a [`Store`]: a directory of segments plus a schema marker.
//!   Lookups go through an in-memory key index (later segments shadow
//!   earlier ones), eviction is segment-granular LRU, and [`Store::compact`]
//!   folds every live record into a single fresh segment.
//! * [`lock`] — `O_EXCL` **lockfile claims** ([`LockFile`]) and the
//!   [`atomic_write`] publish helper. Any number of workers can race to
//!   claim a unit of work (a shard, a migration) and exactly one wins;
//!   everything published lands via temp-file + rename. Claims whose
//!   holder died without unwinding can be reaped after a deadline with
//!   [`LockFile::acquire_or_steal`] — the self-healing half of the fleet
//!   protocol.
//!
//! The crate is deliberately generic: it stores [`Value`] trees keyed by
//! `u64`, and knows nothing about scenarios, grids or simulators. The sweep
//! cache and the shard transport layer their schemas on top — and they can
//! share **one** store directory, each deriving its keys from a disjoint
//! [`namespaced_key`] namespace (a byte-level spec of everything this
//! crate persists lives in `docs/ARCHITECTURE.md` at the workspace root).
//!
//! [`Value`]: serde::Value

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod codec;
pub mod lock;
pub mod segment;
pub mod store;

pub use codec::{get_raw_str, get_value, put_value, CodecError, StrTable};
pub use lock::{atomic_write, Claim, ClaimInfo, Heartbeat, LockFile};
pub use segment::{
    RecordEntry, Segment, SegmentHeader, LEGACY_SEGMENT_FORMAT_VERSION, SEGMENT_FORMAT_VERSION,
};
pub use store::{
    is_v2_entry_name, CompactOutcome, GcOutcome, IndexMode, SegmentInfo, SegmentRecords, Store,
    StoreError,
};

/// Stable 64-bit FNV-1a hash: cache keys, seed derivation, segment names
/// and every checksum in the persistence layer use this one function.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Streaming form of [`fnv1a64`]: feed byte ranges with [`Fnv64::update`]
/// and take the digest with [`Fnv64::finish`]. Hashing a contiguous buffer
/// in one `update` equals `fnv1a64` of the same bytes; the streaming form
/// exists so segment *identity* can hash a file while skipping the ranges
/// that are not content (the sequence number and the checksums).
#[derive(Debug, Clone)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }
}

impl Fnv64 {
    /// A fresh hasher at the FNV-1a offset basis.
    #[must_use]
    pub fn new() -> Self {
        Fnv64::default()
    }

    /// Folds `bytes` into the running digest.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// The digest over everything fed so far.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Derives a store key inside a named keyspace: `fnv1a64("{ns}:{ident}")`.
///
/// The store's key space is one flat `u64`, so clients that share a
/// directory keep out of each other's way by convention: each picks a
/// distinct namespace string and derives every key through this function
/// (the sweep cache predates the convention and keys raw scenario hashes;
/// the shard transport uses the `shard-output` namespace). A freak 64-bit
/// collision across namespaces is survivable because every client
/// re-verifies the shape/identity recorded *inside* its values on read.
#[must_use]
pub fn namespaced_key(namespace: &str, ident: &str) -> u64 {
    fnv1a64(format!("{namespace}:{ident}").as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_stable() {
        // Reference values pin the hash: cache keys, segment names and
        // checksums across the workspace depend on these exact bytes.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fnv1a64(b"ab"), fnv1a64(b"ba"));
    }

    #[test]
    fn streaming_fnv_matches_one_shot_regardless_of_chunking() {
        let data = b"the quick brown fox jumps over the lazy dog";
        for split in [0, 1, 7, data.len()] {
            let mut h = Fnv64::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finish(), fnv1a64(data), "split at {split}");
        }
        assert_eq!(Fnv64::new().finish(), fnv1a64(b""));
    }

    #[test]
    fn namespaced_keys_separate_namespaces() {
        assert_eq!(namespaced_key("a", "x"), fnv1a64(b"a:x"));
        assert_ne!(namespaced_key("a", "x"), namespaced_key("b", "x"));
        assert_ne!(namespaced_key("a", "x"), namespaced_key("a", "y"));
    }
}
