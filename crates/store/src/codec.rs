//! The canonical tagged binary encoding of serde [`Value`] trees.
//!
//! This is the **one** value codec of the persistence layer: `.dsr` shard
//! files and store segments both encode records with it, so a record's
//! bytes are identical wherever it is persisted — which is what lets a
//! merged `.dsr` be compared byte-for-byte against a monolithic one, and
//! what makes trailing checksums meaningful.
//!
//! A value is a tag byte followed by its payload: `0`=null, `1`/`2`=
//! false/true, `3`=u64 varint, `4`=i64 zigzag varint, `5`=f64 as raw bits,
//! `6`=string (varint index into a per-file string table), `7`=array
//! (varint count + values), `8`=object (varint count + (varint key index +
//! value) pairs). Varints are LEB128 as in [`dsmt_isa::varint`], and the
//! decoder rejects non-canonical (overlong) forms.
//!
//! Because the struct-to-[`Value`] mapping is canonical (declaration-order
//! fields, first-use table order, shortest varints, exact float bits),
//! encoding the same records always yields the same bytes.

use bytes::{Buf, BufMut};
use dsmt_isa::varint::{get_uvarint, put_uvarint, VarintError};
use dsmt_isa::{get_ivarint, put_ivarint};
use serde::Value;

/// Errors from decoding the binary value encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before the value did.
    Truncated,
    /// Structurally invalid content (bad tag, non-canonical varint, string
    /// id outside the table, non-UTF-8 string bytes).
    Malformed(String),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "value encoding truncated"),
            CodecError::Malformed(why) => write!(f, "malformed value encoding: {why}"),
        }
    }
}

impl std::error::Error for CodecError {}

impl From<VarintError> for CodecError {
    fn from(e: VarintError) -> Self {
        match e {
            VarintError::Truncated => CodecError::Truncated,
            VarintError::Malformed => CodecError::Malformed("non-canonical varint".to_string()),
        }
    }
}

const TAG_NULL: u8 = 0;
const TAG_FALSE: u8 = 1;
const TAG_TRUE: u8 = 2;
const TAG_U64: u8 = 3;
const TAG_I64: u8 = 4;
const TAG_F64: u8 = 5;
const TAG_STR: u8 = 6;
const TAG_ARRAY: u8 = 7;
const TAG_OBJECT: u8 = 8;

/// The per-file intern table: every distinct string (object field names
/// and string values) is stored once in first-use order, and value trees
/// reference it by index. Records of one file share their object shape, so
/// this turns the repeated schema into a one-time cost.
#[derive(Debug, Default)]
pub struct StrTable {
    strings: Vec<String>,
    index: std::collections::HashMap<String, u64>,
}

impl StrTable {
    /// Interns every string of `value` (depth-first, keys before values)
    /// in first-use order.
    pub fn collect(&mut self, value: &Value) {
        match value {
            Value::Str(s) => self.intern(s),
            Value::Array(items) => items.iter().for_each(|v| self.collect(v)),
            Value::Object(entries) => {
                for (key, item) in entries {
                    self.intern(key);
                    self.collect(item);
                }
            }
            _ => {}
        }
    }

    /// The interned strings in first-use order (the table a file stores).
    #[must_use]
    pub fn strings(&self) -> &[String] {
        &self.strings
    }

    fn intern(&mut self, s: &str) {
        if !self.index.contains_key(s) {
            self.index.insert(s.to_string(), self.strings.len() as u64);
            self.strings.push(s.to_string());
        }
    }

    fn id(&self, s: &str) -> u64 {
        *self
            .index
            .get(s)
            .expect("string was interned during collect")
    }
}

/// Appends the binary encoding of a [`Value`] tree to `buf`. Every string
/// in the tree must have been [`StrTable::collect`]ed into `table` first.
///
/// # Panics
///
/// Panics if the tree contains a string missing from `table` (an encoder
/// bug, not an input condition).
pub fn put_value<B: BufMut>(buf: &mut B, value: &Value, table: &StrTable) {
    match value {
        Value::Null => buf.put_u8(TAG_NULL),
        Value::Bool(false) => buf.put_u8(TAG_FALSE),
        Value::Bool(true) => buf.put_u8(TAG_TRUE),
        Value::U64(n) => {
            buf.put_u8(TAG_U64);
            put_uvarint(buf, *n);
        }
        Value::I64(n) => {
            buf.put_u8(TAG_I64);
            put_ivarint(buf, *n);
        }
        Value::F64(x) => {
            buf.put_u8(TAG_F64);
            buf.put_u64_le(x.to_bits());
        }
        Value::Str(s) => {
            buf.put_u8(TAG_STR);
            put_uvarint(buf, table.id(s));
        }
        Value::Array(items) => {
            buf.put_u8(TAG_ARRAY);
            put_uvarint(buf, items.len() as u64);
            for item in items {
                put_value(buf, item, table);
            }
        }
        Value::Object(entries) => {
            buf.put_u8(TAG_OBJECT);
            put_uvarint(buf, entries.len() as u64);
            for (key, item) in entries {
                put_uvarint(buf, table.id(key));
                put_value(buf, item, table);
            }
        }
    }
}

/// Decodes one binary [`Value`] tree from the front of `buf`, resolving
/// string indices against `strings` (the decoded table).
///
/// # Errors
///
/// [`CodecError::Truncated`] or [`CodecError::Malformed`].
pub fn get_value<B: Buf>(buf: &mut B, strings: &[String]) -> Result<Value, CodecError> {
    if !buf.has_remaining() {
        return Err(CodecError::Truncated);
    }
    match buf.get_u8() {
        TAG_NULL => Ok(Value::Null),
        TAG_FALSE => Ok(Value::Bool(false)),
        TAG_TRUE => Ok(Value::Bool(true)),
        TAG_U64 => Ok(Value::U64(get_uvarint(buf)?)),
        TAG_I64 => Ok(Value::I64(get_ivarint(buf)?)),
        TAG_F64 => {
            if buf.remaining() < 8 {
                return Err(CodecError::Truncated);
            }
            Ok(Value::F64(f64::from_bits(buf.get_u64_le())))
        }
        TAG_STR => Ok(Value::Str(get_interned(buf, strings)?)),
        TAG_ARRAY => {
            let n = get_uvarint(buf)?;
            let mut items = Vec::new();
            for _ in 0..n {
                items.push(get_value(buf, strings)?);
            }
            Ok(Value::Array(items))
        }
        TAG_OBJECT => {
            let n = get_uvarint(buf)?;
            let mut entries = Vec::new();
            for _ in 0..n {
                let key = get_interned(buf, strings)?;
                entries.push((key, get_value(buf, strings)?));
            }
            Ok(Value::Object(entries))
        }
        tag => Err(CodecError::Malformed(format!("unknown value tag {tag}"))),
    }
}

fn get_interned<B: Buf>(buf: &mut B, strings: &[String]) -> Result<String, CodecError> {
    let id = get_uvarint(buf)?;
    strings
        .get(usize::try_from(id).unwrap_or(usize::MAX))
        .cloned()
        .ok_or_else(|| {
            CodecError::Malformed(format!(
                "string id {id} out of table range ({} entries)",
                strings.len()
            ))
        })
}

/// Decodes a length-prefixed raw string (a string-table entry).
///
/// # Errors
///
/// [`CodecError::Truncated`] or [`CodecError::Malformed`] (non-UTF-8).
pub fn get_raw_str<B: Buf>(buf: &mut B) -> Result<String, CodecError> {
    let len = usize::try_from(get_uvarint(buf)?)
        .map_err(|_| CodecError::Malformed("string length overflow".to_string()))?;
    if buf.remaining() < len {
        return Err(CodecError::Truncated);
    }
    let mut bytes = vec![0u8; len];
    buf.copy_to_slice(&mut bytes);
    String::from_utf8(bytes).map_err(|_| CodecError::Malformed("string is not UTF-8".to_string()))
}

/// Appends a length-prefixed raw string (a string-table entry).
pub fn put_raw_str<B: BufMut>(buf: &mut B, s: &str) {
    put_uvarint(buf, s.len() as u64);
    buf.put_slice(s.as_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsmt_isa::varint::put_uvarint;

    #[test]
    fn value_codec_round_trips_edge_values() {
        let tree = Value::Object(vec![
            ("null".to_string(), Value::Null),
            ("t".to_string(), Value::Bool(true)),
            ("f".to_string(), Value::Bool(false)),
            ("zero".to_string(), Value::U64(0)),
            ("max".to_string(), Value::U64(u64::MAX)),
            ("neg".to_string(), Value::I64(i64::MIN)),
            ("pi".to_string(), Value::F64(std::f64::consts::PI)),
            ("nan".to_string(), Value::F64(f64::NAN)),
            ("ninf".to_string(), Value::F64(f64::NEG_INFINITY)),
            ("s".to_string(), Value::Str("héllo,\nworld".to_string())),
            ("empty".to_string(), Value::Str(String::new())),
            (
                "arr".to_string(),
                Value::Array(vec![Value::U64(1), Value::Array(vec![]), Value::Null]),
            ),
        ]);
        let mut table = StrTable::default();
        table.collect(&tree);
        let mut buf = Vec::new();
        put_value(&mut buf, &tree, &table);
        let strings = table.strings().to_vec();
        let back = get_value(&mut buf.as_slice(), &strings).expect("decode");
        // NaN != NaN under PartialEq; compare bit-exactly via re-encode.
        let mut buf2 = Vec::new();
        put_value(&mut buf2, &back, &table);
        assert_eq!(buf, buf2);
    }

    #[test]
    fn value_codec_rejects_garbage() {
        let no_strings: Vec<String> = Vec::new();
        assert_eq!(
            get_value(&mut [].as_slice(), &no_strings),
            Err(CodecError::Truncated)
        );
        assert!(matches!(
            get_value(&mut [99u8].as_slice(), &no_strings),
            Err(CodecError::Malformed(_))
        ));
        // A string id outside the table.
        let mut buf = Vec::new();
        buf.push(TAG_STR);
        put_uvarint(&mut buf, 7);
        assert!(matches!(
            get_value(&mut buf.as_slice(), &no_strings),
            Err(CodecError::Malformed(_))
        ));
        // Truncated f64.
        let buf = vec![TAG_F64, 0, 1, 2];
        assert_eq!(
            get_value(&mut buf.as_slice(), &no_strings),
            Err(CodecError::Truncated)
        );
        // Table decoding rejects oversize and non-UTF-8 strings.
        let mut buf = Vec::new();
        put_uvarint(&mut buf, 100);
        buf.extend_from_slice(b"short");
        assert_eq!(get_raw_str(&mut buf.as_slice()), Err(CodecError::Truncated));
        let mut buf = Vec::new();
        put_uvarint(&mut buf, 2);
        buf.extend_from_slice(&[0xff, 0xfe]);
        assert!(matches!(
            get_raw_str(&mut buf.as_slice()),
            Err(CodecError::Malformed(_))
        ));
    }

    #[test]
    fn raw_strings_round_trip() {
        let mut buf = Vec::new();
        put_raw_str(&mut buf, "héllo");
        put_raw_str(&mut buf, "");
        let mut slice = buf.as_slice();
        assert_eq!(get_raw_str(&mut slice).unwrap(), "héllo");
        assert_eq!(get_raw_str(&mut slice).unwrap(), "");
        assert!(slice.is_empty());
    }
}
