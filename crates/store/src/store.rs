//! The content-addressed record store: a directory of segments, a schema
//! marker, an in-memory key index and segment-granular LRU eviction.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::time::SystemTime;

use serde::{Deserialize, Serialize, Value};

use crate::lock::{atomic_write, LockFile};
use crate::segment::Segment;

/// The schema marker file kept at the store root. Its presence is what
/// distinguishes a store directory from anything else; its `schema` field
/// is the *client's* schema version (e.g. the sweep cache schema), checked
/// fail-stop at open so readers never decode records written under
/// different semantics.
const MARKER_NAME: &str = "STORE.json";

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Marker {
    format: String,
    version: u32,
    schema: u32,
}

/// Why a store could not be opened or written.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// An I/O error, carried as text so the error stays comparable.
    Io(String),
    /// The marker records a different client schema than the caller's.
    SchemaMismatch {
        /// Schema recorded in the marker.
        found: u32,
        /// Schema this build expects.
        expected: u32,
    },
    /// The directory predates the store: it holds per-scenario JSON entries
    /// (the v2 cache layout) and no marker. Migrate or point elsewhere.
    LegacyLayout {
        /// How many legacy `.json` entries were found.
        json_files: usize,
    },
    /// A segment file failed verification (checksum, truncation, codec).
    Corrupt {
        /// The offending file name.
        file: String,
        /// What about it failed.
        why: String,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(why) => write!(f, "store i/o error: {why}"),
            StoreError::SchemaMismatch { found, expected } => write!(
                f,
                "store schema v{found} does not match this build (v{expected}); \
                 delete the directory or migrate it"
            ),
            StoreError::LegacyLayout { json_files } => write!(
                f,
                "directory holds {json_files} legacy per-scenario JSON cache entries \
                 (v2 layout); run `dsmt sweep migrate` to convert it to the v3 store"
            ),
            StoreError::Corrupt { file, why } => {
                write!(
                    f,
                    "corrupt segment {file}: {why} (delete it to re-simulate)"
                )
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e.to_string())
    }
}

/// One loaded segment plus its on-disk metadata.
#[derive(Debug)]
struct LoadedSegment {
    name: String,
    path: PathBuf,
    bytes: u64,
    modified: SystemTime,
    segment: Segment,
}

/// On-disk metadata of one segment (see [`Store::segment_infos`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentInfo {
    /// Segment file name (`seg-<hash>.dsrs`).
    pub name: String,
    /// File size in bytes.
    pub bytes: u64,
    /// Records held.
    pub records: usize,
    /// Last use (mtime: written on publish, re-touched on hit).
    pub modified: SystemTime,
}

/// What a [`Store::gc`] pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcOutcome {
    /// Segments present when the pass started.
    pub examined: usize,
    /// Segments removed.
    pub evicted: usize,
    /// Bytes freed.
    pub evicted_bytes: u64,
    /// Segments left resident.
    pub kept: usize,
    /// Bytes left resident.
    pub kept_bytes: u64,
}

/// What a [`Store::compact`] pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactOutcome {
    /// Segments before compaction.
    pub segments_before: usize,
    /// Bytes before compaction.
    pub bytes_before: u64,
    /// Bytes after compaction (the single fresh segment).
    pub bytes_after: u64,
    /// Live records carried over.
    pub records: usize,
}

/// A content-addressed store of `(u64 key, Value)` records.
///
/// The store is a directory: a `STORE.json` schema marker, a `segments/`
/// directory of immutable checksummed [`Segment`] files, and a `locks/`
/// directory for [`LockFile`] claims. Open loads and verifies every
/// segment (fail-stop: one corrupt segment rejects the open, with the
/// offending file named); lookups then hit an in-memory index where later
/// segments (by mtime, then name) shadow earlier ones.
///
/// Writers batch records and [`Store::publish`] them as one new segment —
/// an atomic-rename of a content-addressed file, so concurrent publishers
/// (other threads, other hosts on a shared mount) can never corrupt each
/// other: distinct batches get distinct names, identical batches collapse
/// to one file.
///
/// # Example
///
/// ```
/// use dsmt_store::Store;
/// use serde::Value;
///
/// let dir = std::env::temp_dir().join(format!("store-doc-{}", std::process::id()));
/// # let _ = std::fs::remove_dir_all(&dir);
/// let mut store = Store::open(&dir, 1).unwrap();
/// store.publish(vec![(7, Value::U64(42))]).unwrap();
/// assert_eq!(store.get(7), Some(&Value::U64(42)));
///
/// // A second handle sees the open-time snapshot, and picks up foreign
/// // segments on refresh().
/// let mut other = Store::open(&dir, 1).unwrap();
/// store.publish(vec![(8, Value::Bool(true))]).unwrap();
/// assert!(other.get(8).is_none());
/// other.refresh().unwrap();
/// assert_eq!(other.get(8), Some(&Value::Bool(true)));
/// # let _ = std::fs::remove_dir_all(&dir);
/// ```
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    segments: Vec<LoadedSegment>,
    index: HashMap<u64, (usize, usize)>,
    /// Mtime of `segments/` observed just before the last full scan, used
    /// by [`Store::refresh`] to skip rescanning an unchanged directory.
    scanned_dir_mtime: Option<SystemTime>,
}

/// How much older than "now" the segments directory's mtime must be before
/// [`Store::refresh`] trusts an unchanged mtime and skips the rescan.
/// Directory mtimes can be coarse (whole seconds on some filesystems), so a
/// publish landing within the same mtime granule as our scan would be
/// invisible to a pure mtime compare; within this window we always rescan.
const REFRESH_MTIME_GUARD: std::time::Duration = std::time::Duration::from_secs(2);

impl Store {
    /// Opens (creating if needed) a store at `dir` for client schema
    /// `schema`.
    ///
    /// # Errors
    ///
    /// [`StoreError::LegacyLayout`] if the directory holds a v2 JSON cache,
    /// [`StoreError::SchemaMismatch`] if the marker disagrees with
    /// `schema`, [`StoreError::Corrupt`] if a segment fails verification,
    /// or [`StoreError::Io`].
    pub fn open(dir: impl Into<PathBuf>, schema: u32) -> Result<Self, StoreError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let marker_path = dir.join(MARKER_NAME);
        match std::fs::read_to_string(&marker_path) {
            Ok(text) => {
                let marker: Marker = serde::from_str(&text).map_err(|e| StoreError::Corrupt {
                    file: MARKER_NAME.to_string(),
                    why: e.to_string(),
                })?;
                if marker.format != "dsmt-store" || marker.version != 1 {
                    return Err(StoreError::Corrupt {
                        file: MARKER_NAME.to_string(),
                        why: format!("unknown format {}/v{}", marker.format, marker.version),
                    });
                }
                if marker.schema != schema {
                    return Err(StoreError::SchemaMismatch {
                        found: marker.schema,
                        expected: schema,
                    });
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                let legacy = count_legacy_json(&dir)?;
                if legacy > 0 {
                    return Err(StoreError::LegacyLayout { json_files: legacy });
                }
                let marker = Marker {
                    format: "dsmt-store".to_string(),
                    version: 1,
                    schema,
                };
                atomic_write(&marker_path, serde::to_string_pretty(&marker).as_bytes())?;
            }
            Err(e) => return Err(e.into()),
        }
        std::fs::create_dir_all(dir.join("segments"))?;
        let mut store = Store {
            dir,
            segments: Vec::new(),
            index: HashMap::new(),
            scanned_dir_mtime: None,
        };
        store.load_segments()?;
        Ok(store)
    }

    /// The store's root directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn segments_dir(&self) -> PathBuf {
        self.dir.join("segments")
    }

    /// The directory [`Store::claim`] locks live in.
    #[must_use]
    pub fn locks_dir(&self) -> PathBuf {
        self.dir.join("locks")
    }

    /// Loads every segment, least recently used first so later (fresher)
    /// segments shadow earlier ones in the index.
    fn load_segments(&mut self) -> Result<(), StoreError> {
        self.segments.clear();
        self.index.clear();
        self.scanned_dir_mtime = self.stat_segments_dir();
        let mut files: Vec<(SystemTime, String, PathBuf, u64)> = Vec::new();
        for entry in std::fs::read_dir(self.segments_dir())?.filter_map(Result::ok) {
            let path = entry.path();
            if path.extension().is_none_or(|x| x != "dsrs") {
                continue;
            }
            let meta = entry.metadata()?;
            let name = path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            files.push((
                meta.modified().unwrap_or(SystemTime::UNIX_EPOCH),
                name,
                path,
                meta.len(),
            ));
        }
        // Deterministic order even on coarse-mtime filesystems.
        files.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
        for (modified, name, path, bytes) in files {
            let raw = std::fs::read(&path)?;
            let segment = Segment::decode(&raw).map_err(|e| StoreError::Corrupt {
                file: name.clone(),
                why: e.to_string(),
            })?;
            self.attach(LoadedSegment {
                name,
                path,
                bytes,
                modified,
                segment,
            });
        }
        Ok(())
    }

    fn attach(&mut self, loaded: LoadedSegment) {
        let seg_idx = self.segments.len();
        for (rec_idx, (key, _)) in loaded.segment.records.iter().enumerate() {
            self.index.insert(*key, (seg_idx, rec_idx));
        }
        self.segments.push(loaded);
    }

    /// Looks up the freshest record stored under `key`.
    #[must_use]
    pub fn get(&self, key: u64) -> Option<&Value> {
        let &(seg, rec) = self.index.get(&key)?;
        Some(&self.segments[seg].segment.records[rec].1)
    }

    /// The file name of the segment currently winning `key` — a stable
    /// identity clients can use to deduplicate per-segment work (e.g.
    /// touching a segment once per sweep instead of once per hit).
    #[must_use]
    pub fn segment_name_of(&self, key: u64) -> Option<&str> {
        let &(seg, _) = self.index.get(&key)?;
        Some(&self.segments[seg].name)
    }

    /// Whether any record is stored under `key`.
    #[must_use]
    pub fn contains(&self, key: u64) -> bool {
        self.index.contains_key(&key)
    }

    /// Number of distinct keys.
    #[must_use]
    pub fn record_count(&self) -> usize {
        self.index.len()
    }

    /// Number of segments on disk.
    #[must_use]
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Total bytes held by segment files.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.segments.iter().map(|s| s.bytes).sum()
    }

    /// Metadata for every segment, least recently used first.
    #[must_use]
    pub fn segment_infos(&self) -> Vec<SegmentInfo> {
        let mut infos: Vec<SegmentInfo> = self
            .segments
            .iter()
            .map(|s| SegmentInfo {
                name: s.name.clone(),
                bytes: s.bytes,
                records: s.segment.records.len(),
                modified: s.modified,
            })
            .collect();
        infos.sort_by(|a, b| a.modified.cmp(&b.modified).then(a.name.cmp(&b.name)));
        infos
    }

    /// Publishes `records` as one new immutable segment (atomic rename of
    /// a content-addressed file) and indexes it. Returns the new segment's
    /// metadata, or `None` for an empty batch.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failure.
    pub fn publish(
        &mut self,
        records: Vec<(u64, Value)>,
    ) -> Result<Option<SegmentInfo>, StoreError> {
        if records.is_empty() {
            return Ok(None);
        }
        let segment = Segment::new(records);
        let bytes = segment.encode();
        let name = Segment::content_name(&bytes);
        let path = self.segments_dir().join(&name);
        atomic_write(&path, &bytes)?;
        let meta = std::fs::metadata(&path)?;
        dsmt_obs::counter!("store.segments_published").inc();
        dsmt_obs::counter!("store.bytes_published").add(meta.len());
        dsmt_obs::info!(
            "store.publish",
            segment = name.as_str(),
            records = segment.records.len(),
            bytes = meta.len()
        );
        // An identical batch re-published lands on the same file; refresh
        // the in-memory copy instead of double-attaching, and re-assert its
        // records as the shadow winners — its mtime is now the newest, and
        // a reopen (which orders by mtime) must resolve keys the same way
        // this handle does.
        if let Some(pos) = self.segments.iter().position(|s| s.name == name) {
            self.segments[pos].modified = meta.modified().unwrap_or(SystemTime::UNIX_EPOCH);
            for (rec_idx, (key, _)) in self.segments[pos].segment.records.iter().enumerate() {
                self.index.insert(*key, (pos, rec_idx));
            }
            return Ok(Some(self.segment_infos_for(pos)));
        }
        let loaded = LoadedSegment {
            name,
            path,
            bytes: meta.len(),
            modified: meta.modified().unwrap_or(SystemTime::UNIX_EPOCH),
            segment,
        };
        self.attach(loaded);
        Ok(Some(self.segment_infos_for(self.segments.len() - 1)))
    }

    fn segment_infos_for(&self, idx: usize) -> SegmentInfo {
        let s = &self.segments[idx];
        SegmentInfo {
            name: s.name.clone(),
            bytes: s.bytes,
            records: s.segment.records.len(),
            modified: s.modified,
        }
    }

    /// Re-touches the segment holding `key` (best effort) so LRU eviction
    /// tracks use, not just creation. Records decoded in memory stay
    /// readable even if another process evicts the file meanwhile.
    ///
    /// Caveat for clients that overwrite keys with *different* values:
    /// shadow precedence is mtime order, so touching a segment promotes
    /// **all** its records — including ones shadowed by a newer segment —
    /// in the order a reopen computes. The sweep cache is immune (a key's
    /// value is a pure function of the key); a future client that mutates
    /// values should [`Store::compact`] after overwriting (see ROADMAP on
    /// per-key versioning).
    pub fn touch(&self, key: u64) {
        if let Some(&(seg, _)) = self.index.get(&key) {
            if let Ok(f) = std::fs::OpenOptions::new()
                .write(true)
                .open(&self.segments[seg].path)
            {
                let _ = f.set_modified(SystemTime::now());
            }
        }
    }

    /// Mtime of the segments directory itself, which the kernel bumps on
    /// every entry add/remove — a one-stat change detector for publishes.
    fn stat_segments_dir(&self) -> Option<SystemTime> {
        std::fs::metadata(self.segments_dir())
            .and_then(|m| m.modified())
            .ok()
    }

    /// Picks up segments published by other processes since open (or the
    /// last refresh). In-memory state for already-loaded segments is kept.
    ///
    /// Polling callers (`dsmt shard status --watch`, the serve daemon's
    /// status endpoint) hit this every few seconds; re-statting every
    /// segment each poll is wasted work when nothing was published. A new
    /// segment file always bumps the `segments/` directory's own mtime, so
    /// an unchanged dir mtime means an unchanged listing — the scan is
    /// skipped (counted by `store.refresh_skipped`). Because directory
    /// mtimes can be coarse, the skip only triggers once the mtime is at
    /// least `REFRESH_MTIME_GUARD` old: a publish racing our previous
    /// scan inside one mtime granule is rescanned, never missed.
    ///
    /// # Errors
    ///
    /// As for [`Store::open`] (a newly appeared corrupt segment fails).
    pub fn refresh(&mut self) -> Result<usize, StoreError> {
        let dir_mtime = self.stat_segments_dir();
        if let (Some(prev), Some(cur)) = (self.scanned_dir_mtime, dir_mtime) {
            let settled = SystemTime::now()
                .duration_since(cur)
                .is_ok_and(|age| age >= REFRESH_MTIME_GUARD);
            if prev == cur && settled {
                dsmt_obs::counter!("store.refresh_skipped").inc();
                return Ok(0);
            }
        }
        self.scanned_dir_mtime = dir_mtime;
        let known: std::collections::HashSet<String> =
            self.segments.iter().map(|s| s.name.clone()).collect();
        let mut fresh: Vec<(SystemTime, String, PathBuf, u64)> = Vec::new();
        for entry in std::fs::read_dir(self.segments_dir())?.filter_map(Result::ok) {
            let path = entry.path();
            if path.extension().is_none_or(|x| x != "dsrs") {
                continue;
            }
            let name = path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            if known.contains(&name) {
                continue;
            }
            let meta = entry.metadata()?;
            fresh.push((
                meta.modified().unwrap_or(SystemTime::UNIX_EPOCH),
                name,
                path,
                meta.len(),
            ));
        }
        fresh.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
        let found = fresh.len();
        for (modified, name, path, bytes) in fresh {
            let raw = std::fs::read(&path)?;
            let segment = Segment::decode(&raw).map_err(|e| StoreError::Corrupt {
                file: name.clone(),
                why: e.to_string(),
            })?;
            dsmt_obs::counter!("store.segments_read").inc();
            dsmt_obs::counter!("store.bytes_read").add(bytes);
            self.attach(LoadedSegment {
                name,
                path,
                bytes,
                modified,
                segment,
            });
        }
        Ok(found)
    }

    /// Tries to claim `name` in the store's lock directory; `Ok(None)`
    /// means another claimant holds it.
    ///
    /// # Errors
    ///
    /// Any I/O error other than the lock already existing.
    pub fn claim(&self, name: &str) -> std::io::Result<Option<LockFile>> {
        LockFile::acquire(self.locks_dir(), name)
    }

    /// Evicts least-recently-used segments until the store fits in
    /// `max_bytes`. Returns what was examined, evicted and kept.
    ///
    /// The pass is guarded by a `gc` lock claim so concurrent collectors
    /// (two sweeps finishing together) do not double-evict; the loser
    /// returns an all-kept outcome, with a warning on stderr naming the
    /// claim holder — a claim left by a worker that died without unwinding
    /// must be removed by hand (its holder pid is recorded in the file),
    /// or the byte cap would silently stop being enforced. Eviction is
    /// best-effort: a segment that cannot be removed is counted as kept.
    pub fn gc(&mut self, max_bytes: u64) -> GcOutcome {
        let Ok(Some(_guard)) = self.claim("gc") else {
            dsmt_obs::counter!("store.lock_contention").inc();
            dsmt_obs::warn!(
                "store.gc_skipped",
                lock = self.locks_dir().join("gc.lock").display().to_string(),
                holder = LockFile::holder(self.locks_dir(), "gc")
                    .unwrap_or_else(|| "unknown holder".to_string()),
                hint = "if no collector is running, the claim is stale — \
                        remove the file to re-enable eviction"
            );
            return GcOutcome {
                examined: self.segments.len(),
                kept: self.segments.len(),
                kept_bytes: self.total_bytes(),
                ..GcOutcome::default()
            };
        };
        // Re-stat mtimes first: touches (this process's or another's)
        // happen on disk, and recency must reflect them.
        for seg in &mut self.segments {
            if let Ok(meta) = std::fs::metadata(&seg.path) {
                seg.modified = meta.modified().unwrap_or(seg.modified);
            }
        }
        // LRU order over current segments (self.segments is load-ordered,
        // but publishes appended since may interleave with touches).
        let mut order: Vec<usize> = (0..self.segments.len()).collect();
        order.sort_by(|&a, &b| {
            let (sa, sb) = (&self.segments[a], &self.segments[b]);
            sa.modified.cmp(&sb.modified).then(sa.name.cmp(&sb.name))
        });
        let mut outcome = GcOutcome {
            examined: self.segments.len(),
            ..GcOutcome::default()
        };
        let mut excess = self.total_bytes().saturating_sub(max_bytes);
        let mut evicted_idx: Vec<usize> = Vec::new();
        for idx in order {
            let seg = &self.segments[idx];
            let evicted = excess > 0 && std::fs::remove_file(&seg.path).is_ok();
            if evicted {
                excess = excess.saturating_sub(seg.bytes);
                outcome.evicted += 1;
                outcome.evicted_bytes += seg.bytes;
                evicted_idx.push(idx);
            } else {
                outcome.kept += 1;
                outcome.kept_bytes += seg.bytes;
            }
        }
        if !outcome.is_noop() {
            evicted_idx.sort_unstable();
            for idx in evicted_idx.into_iter().rev() {
                self.segments.remove(idx);
            }
            self.reindex();
            dsmt_obs::counter!("store.gc_evictions").add(outcome.evicted as u64);
            dsmt_obs::info!(
                "store.gc",
                evicted = outcome.evicted,
                evicted_bytes = outcome.evicted_bytes,
                kept = outcome.kept,
                kept_bytes = outcome.kept_bytes,
                max_bytes = max_bytes
            );
        }
        outcome
    }

    /// Folds every live record into one fresh segment (in ascending key
    /// order, so compaction is deterministic) and removes the old
    /// segments. Shadowed duplicates are dropped.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failure; the store is reloaded
    /// from disk on success.
    pub fn compact(&mut self) -> Result<CompactOutcome, StoreError> {
        let _span = dsmt_obs::span("store.compact")
            .field("segments_before", self.segments.len())
            .field("bytes_before", self.total_bytes());
        let before_segments = self.segments.len();
        let before_bytes = self.total_bytes();
        let mut keys: Vec<u64> = self.index.keys().copied().collect();
        keys.sort_unstable();
        let records: Vec<(u64, Value)> = keys
            .iter()
            .map(|&k| (k, self.get(k).expect("indexed key").clone()))
            .collect();
        let n_records = records.len();
        let old_names: Vec<(String, PathBuf)> = self
            .segments
            .iter()
            .map(|s| (s.name.clone(), s.path.clone()))
            .collect();
        let fresh = self.publish(records)?;
        let fresh_name = fresh.as_ref().map(|i| i.name.clone());
        for (name, path) in old_names {
            if Some(&name) != fresh_name.as_ref() {
                let _ = std::fs::remove_file(&path);
            }
        }
        self.load_segments()?;
        Ok(CompactOutcome {
            segments_before: before_segments,
            bytes_before: before_bytes,
            bytes_after: self.total_bytes(),
            records: n_records,
        })
    }

    /// Rebuilds the key index under the store's one precedence rule:
    /// freshest `(mtime, name)` wins — the same order [`Store::open`]
    /// applies, so the in-memory view and a reopen always resolve a
    /// duplicated key identically.
    fn reindex(&mut self) {
        let mut order: Vec<usize> = (0..self.segments.len()).collect();
        order.sort_by(|&a, &b| {
            let (sa, sb) = (&self.segments[a], &self.segments[b]);
            sa.modified.cmp(&sb.modified).then(sa.name.cmp(&sb.name))
        });
        self.index.clear();
        for seg_idx in order {
            for rec_idx in 0..self.segments[seg_idx].segment.records.len() {
                let key = self.segments[seg_idx].segment.records[rec_idx].0;
                self.index.insert(key, (seg_idx, rec_idx));
            }
        }
    }
}

impl GcOutcome {
    fn is_noop(&self) -> bool {
        self.evicted == 0
    }
}

/// Whether `name` looks like a v2 cache entry file: `<16 hex digits>.json`
/// (the old per-scenario layout named files by the scenario's hex cache
/// key). Deliberately narrow so unrelated JSON sitting in the directory —
/// a `plan.json`, an exported report — is neither flagged at open nor
/// touched by migration.
pub fn is_v2_entry_name(name: &str) -> bool {
    name.strip_suffix(".json")
        .is_some_and(|stem| stem.len() == 16 && stem.bytes().all(|b| b.is_ascii_hexdigit()))
}

/// Counts v2-style per-scenario JSON entries directly under `dir`.
fn count_legacy_json(dir: &Path) -> std::io::Result<usize> {
    let mut n = 0;
    match std::fs::read_dir(dir) {
        Ok(rd) => {
            for entry in rd.filter_map(Result::ok) {
                if entry
                    .path()
                    .file_name()
                    .is_some_and(|f| is_v2_entry_name(&f.to_string_lossy()))
                {
                    n += 1;
                }
            }
            Ok(n)
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(0),
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("dsmt-store-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn value(n: u64) -> Value {
        Value::Object(vec![
            ("n".to_string(), Value::U64(n)),
            ("label".to_string(), Value::Str(format!("record-{n}"))),
        ])
    }

    #[test]
    fn publish_then_get_round_trips_across_reopen() {
        let dir = temp_store("roundtrip");
        let mut store = Store::open(&dir, 3).expect("open");
        assert!(store.get(1).is_none());
        store.publish(vec![(1, value(1)), (2, value(2))]).unwrap();
        assert_eq!(store.get(1), Some(&value(1)));
        assert_eq!(store.record_count(), 2);
        drop(store);
        let store = Store::open(&dir, 3).expect("reopen");
        assert_eq!(store.get(2), Some(&value(2)));
        assert_eq!(store.segment_count(), 1);
        assert!(store.total_bytes() > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn later_segments_shadow_earlier_ones() {
        let dir = temp_store("shadow");
        let mut store = Store::open(&dir, 1).expect("open");
        store.publish(vec![(7, value(1))]).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        store.publish(vec![(7, value(2))]).unwrap();
        assert_eq!(store.get(7), Some(&value(2)));
        assert_eq!(store.record_count(), 1);
        assert_eq!(store.segment_count(), 2);
        drop(store);
        // The shadow survives a reload (mtime order).
        let store = Store::open(&dir, 1).expect("reopen");
        assert_eq!(store.get(7), Some(&value(2)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn schema_mismatch_and_legacy_layout_fail_stop() {
        let dir = temp_store("schema");
        drop(Store::open(&dir, 2).expect("open v2"));
        assert_eq!(
            Store::open(&dir, 3).unwrap_err(),
            StoreError::SchemaMismatch {
                found: 2,
                expected: 3
            }
        );
        let legacy = temp_store("legacy");
        std::fs::create_dir_all(&legacy).unwrap();
        std::fs::write(legacy.join("0011223344556677.json"), "{}").unwrap();
        assert_eq!(
            Store::open(&legacy, 3).unwrap_err(),
            StoreError::LegacyLayout { json_files: 1 }
        );
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&legacy);
    }

    #[test]
    fn corrupt_segments_are_rejected_by_name() {
        let dir = temp_store("corrupt");
        let mut store = Store::open(&dir, 1).expect("open");
        let info = store.publish(vec![(1, value(1))]).unwrap().unwrap();
        drop(store);
        let path = dir.join("segments").join(&info.name);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&path, bytes).unwrap();
        match Store::open(&dir, 1) {
            Err(StoreError::Corrupt { file, .. }) => assert_eq!(file, info.name),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn identical_batches_collapse_to_one_segment() {
        let dir = temp_store("idempotent");
        let mut store = Store::open(&dir, 1).expect("open");
        let a = store.publish(vec![(1, value(1))]).unwrap().unwrap();
        let b = store.publish(vec![(1, value(1))]).unwrap().unwrap();
        assert_eq!(a.name, b.name);
        assert_eq!(store.segment_count(), 1);
        assert!(store.publish(Vec::new()).unwrap().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn republished_batches_win_shadowing_in_memory_and_on_reopen() {
        let dir = temp_store("republish-shadow");
        let mut store = Store::open(&dir, 1).expect("open");
        store.publish(vec![(7, value(1))]).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        store.publish(vec![(7, value(2))]).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        // Re-publishing the first batch collapses onto its old file but
        // bumps its mtime: it must become the shadow winner both for this
        // handle and for a reopen (which orders by mtime).
        store.publish(vec![(7, value(1))]).unwrap();
        assert_eq!(store.segment_count(), 2);
        assert_eq!(store.get(7), Some(&value(1)), "in-memory view");
        drop(store);
        let store = Store::open(&dir, 1).expect("reopen");
        assert_eq!(store.get(7), Some(&value(1)), "reopened view agrees");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn v2_entry_names_are_detected_narrowly() {
        assert!(is_v2_entry_name("00112233aabbccdd.json"));
        assert!(is_v2_entry_name("FFFFFFFFFFFFFFFF.json"));
        for foreign in [
            "plan.json",
            "STORE.json",
            "report.json",
            "00112233aabbccdd.dsr",
            "0011.json",
            "00112233aabbccddee.json",
            "00112233aabbccdg.json",
            "00112233aabbccdd",
        ] {
            assert!(!is_v2_entry_name(foreign), "{foreign}");
        }
    }

    #[test]
    fn foreign_json_does_not_trigger_the_legacy_fail_stop() {
        let dir = temp_store("foreign-json");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("plan.json"), "{}").unwrap();
        let store = Store::open(&dir, 3).expect("foreign JSON is not a v2 cache");
        assert_eq!(store.record_count(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_evicts_lru_segments_down_to_cap() {
        let dir = temp_store("gc");
        let mut store = Store::open(&dir, 1).expect("open");
        for n in 0..4 {
            store.publish(vec![(n, value(n))]).unwrap();
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        let infos = store.segment_infos();
        assert_eq!(infos.len(), 4);
        let newest = infos.last().unwrap().clone();
        // Touch key 0 so its (oldest) segment becomes the most recent.
        std::thread::sleep(std::time::Duration::from_millis(20));
        store.touch(0);
        let outcome = store.gc(newest.bytes * 2);
        assert_eq!(outcome.examined, 4);
        assert_eq!(outcome.evicted, 2);
        assert_eq!(outcome.kept, 2);
        assert!(store.contains(0), "touched segment survives");
        assert!(store.contains(3), "newest segment survives");
        assert!(!store.contains(1) && !store.contains(2));
        // A generous cap evicts nothing; zero empties the store.
        assert_eq!(store.gc(u64::MAX).evicted, 0);
        assert_eq!(store.gc(0).evicted, 2);
        assert_eq!(store.record_count(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compact_folds_everything_into_one_segment() {
        let dir = temp_store("compact");
        let mut store = Store::open(&dir, 1).expect("open");
        store.publish(vec![(1, value(1)), (2, value(2))]).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        store.publish(vec![(2, value(22)), (3, value(3))]).unwrap();
        let outcome = store.compact().expect("compact");
        assert_eq!(outcome.segments_before, 2);
        assert_eq!(outcome.records, 3);
        assert_eq!(store.segment_count(), 1);
        assert_eq!(store.get(2), Some(&value(22)), "shadow winner survives");
        assert_eq!(store.get(1), Some(&value(1)));
        // Compacting a compacted store is a no-op fixed point.
        let again = store.compact().expect("recompact");
        assert_eq!(again.bytes_before, again.bytes_after);
        assert_eq!(store.segment_count(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn refresh_picks_up_foreign_segments() {
        let dir = temp_store("refresh");
        let mut a = Store::open(&dir, 1).expect("open a");
        let mut b = Store::open(&dir, 1).expect("open b");
        a.publish(vec![(1, value(1))]).unwrap();
        assert!(b.get(1).is_none(), "open-time snapshot");
        assert_eq!(b.refresh().expect("refresh"), 1);
        assert_eq!(b.get(1), Some(&value(1)));
        assert_eq!(b.refresh().expect("refresh again"), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Forces the segments directory's mtime into the past so the refresh
    /// short-circuit's settle guard is satisfied without sleeping.
    fn backdate_segments_dir(dir: &Path) {
        let seg_dir = dir.join("segments");
        let f = std::fs::File::open(&seg_dir).expect("open segments dir");
        f.set_modified(SystemTime::now() - std::time::Duration::from_secs(30))
            .expect("backdate dir mtime");
    }

    #[test]
    fn refresh_short_circuits_on_unchanged_dir_mtime() {
        let dir = temp_store("refresh-skip");
        let mut a = Store::open(&dir, 1).expect("open a");
        let mut b = Store::open(&dir, 1).expect("open b");
        a.publish(vec![(1, value(1))]).unwrap();
        assert_eq!(b.refresh().expect("refresh"), 1);

        // The publish just bumped the dir mtime, so the mtime is too fresh
        // to trust; a refresh now must still rescan (finding nothing new).
        assert_eq!(b.refresh().expect("fresh-mtime refresh"), 0);

        // Settle the mtime into the past: the next refresh rescans once
        // (mtime changed), then the one after short-circuits.
        backdate_segments_dir(&dir);
        assert_eq!(b.refresh().expect("post-backdate rescan"), 0);
        let skipped = dsmt_obs::registry().counter("store.refresh_skipped");
        let before = skipped.get();
        assert_eq!(b.refresh().expect("short-circuit"), 0);
        assert!(
            skipped.get() > before,
            "unchanged settled dir mtime should skip the scan"
        );

        // A new publish bumps the dir mtime, which defeats the
        // short-circuit: the publish is observed, never missed.
        a.publish(vec![(2, value(2))]).unwrap();
        assert_eq!(b.refresh().expect("sees new segment"), 1);
        assert_eq!(b.get(2), Some(&value(2)));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
