//! The content-addressed record store: a directory of segments, a schema
//! marker, an in-memory key index and segment-granular LRU eviction.
//!
//! Since segment format v2 the index is built from **key-directory
//! headers**: open reads and checksum-verifies each segment's header —
//! O(keys), not O(total bytes) — and record values are decoded lazily on
//! first [`Store::get`], verified against the per-record FNV recorded in
//! the directory, then memoized. Legacy v1 segments (no header) still load
//! through the old decode-everything path, and [`Store::compact`] rewrites
//! them into headered form.

use std::collections::HashMap;
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use std::sync::OnceLock;
use std::time::SystemTime;

use serde::{Deserialize, Serialize, Value};

use crate::codec::{get_value, CodecError};
use crate::fnv1a64;
use crate::lock::{atomic_write, LockFile};
use crate::segment::{peek_version, RecordEntry, Segment, SegmentHeader, SEGMENT_FORMAT_VERSION};

/// The schema marker file kept at the store root. Its presence is what
/// distinguishes a store directory from anything else; its `schema` field
/// is the *client's* schema version (e.g. the sweep cache schema), checked
/// fail-stop at open so readers never decode records written under
/// different semantics.
const MARKER_NAME: &str = "STORE.json";

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Marker {
    format: String,
    version: u32,
    schema: u32,
}

/// Why a store could not be opened or written.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// An I/O error, carried as text so the error stays comparable.
    Io(String),
    /// The marker records a different client schema than the caller's.
    SchemaMismatch {
        /// Schema recorded in the marker.
        found: u32,
        /// Schema this build expects.
        expected: u32,
    },
    /// The directory predates the store: it holds per-scenario JSON entries
    /// (the v2 cache layout) and no marker. Migrate or point elsewhere.
    LegacyLayout {
        /// How many legacy `.json` entries were found.
        json_files: usize,
    },
    /// A segment file failed verification (checksum, truncation, codec).
    Corrupt {
        /// The offending file name.
        file: String,
        /// What about it failed.
        why: String,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(why) => write!(f, "store i/o error: {why}"),
            StoreError::SchemaMismatch { found, expected } => write!(
                f,
                "store schema v{found} does not match this build (v{expected}); \
                 delete the directory or migrate it"
            ),
            StoreError::LegacyLayout { json_files } => write!(
                f,
                "directory holds {json_files} legacy per-scenario JSON cache entries \
                 (v2 layout); run `dsmt sweep migrate` to convert it to the v3 store"
            ),
            StoreError::Corrupt { file, why } => {
                write!(
                    f,
                    "corrupt segment {file}: {why} (delete it to re-simulate)"
                )
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e.to_string())
    }
}

/// How a [`Store`] builds its key index at open.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexMode {
    /// Index v2 segments from their checksummed headers alone and decode
    /// records lazily on first access. The default.
    Indexed,
    /// Decode and verify every record of every segment at open — the
    /// pre-header behavior, kept as an escape hatch (`DSMT_STORE_EAGER=1`)
    /// and as the baseline the `store_open` bench and CI gate measure
    /// against.
    Eager,
}

impl IndexMode {
    /// [`IndexMode::Eager`] when `DSMT_STORE_EAGER` is set to `1`/`true`/
    /// `yes`, [`IndexMode::Indexed`] otherwise.
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var("DSMT_STORE_EAGER") {
            Ok(v) if matches!(v.as_str(), "1" | "true" | "yes") => IndexMode::Eager,
            _ => IndexMode::Indexed,
        }
    }
}

/// How one segment's records are held in memory.
#[derive(Debug)]
enum SegmentData {
    /// Fully decoded records: legacy v1 files, [`IndexMode::Eager`] opens,
    /// and segments this handle itself published (their records were
    /// already in memory).
    Eager(Vec<(u64, Value)>),
    /// Header-indexed v2 segment: records decode lazily from their
    /// `(offset, len)` slice, each memoized in its `OnceLock` cell after
    /// its FNV verifies.
    Lazy {
        strings: Vec<String>,
        records_base: u64,
        entries: Vec<RecordEntry>,
        cells: Vec<OnceLock<Value>>,
    },
}

/// One loaded segment plus its on-disk metadata.
#[derive(Debug)]
struct LoadedSegment {
    name: String,
    path: PathBuf,
    bytes: u64,
    modified: SystemTime,
    version: u32,
    seq: u64,
    data: SegmentData,
}

impl LoadedSegment {
    fn records_len(&self) -> usize {
        match &self.data {
            SegmentData::Eager(records) => records.len(),
            SegmentData::Lazy { entries, .. } => entries.len(),
        }
    }

    fn key_at(&self, rec: usize) -> u64 {
        match &self.data {
            SegmentData::Eager(records) => records[rec].0,
            SegmentData::Lazy { entries, .. } => entries[rec].key,
        }
    }

    fn is_lazy(&self) -> bool {
        matches!(self.data, SegmentData::Lazy { .. })
    }

    /// The store's one precedence order, ascending (later entries win):
    /// recorded sequence number first, then mtime, then name. Racing
    /// writers can stamp the same seq into distinct batches; the
    /// `(mtime, name)` tail breaks that tie the same way on every handle
    /// and every reopen.
    fn precedence(&self) -> (u64, SystemTime, &str) {
        (self.seq, self.modified, &self.name)
    }
}

/// On-disk metadata of one segment (see [`Store::segment_infos`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentInfo {
    /// Segment file name (`seg-<hash>.dsrs`).
    pub name: String,
    /// File size in bytes.
    pub bytes: u64,
    /// Records held.
    pub records: usize,
    /// Last use (mtime: written on publish, re-touched on hit).
    pub modified: SystemTime,
    /// Segment format version (1 = legacy headerless, 2 = key-directory).
    pub version: u32,
    /// Publish sequence number recorded in the header (0 for legacy v1).
    pub seq: u64,
    /// Whether this handle indexed the segment from its header alone
    /// (records decode lazily) rather than decoding it eagerly.
    pub lazy: bool,
}

/// One segment's fully decoded records, yielded by
/// [`Store::iter_segments`].
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentRecords {
    /// Segment file name.
    pub name: String,
    /// Segment format version.
    pub version: u32,
    /// Publish sequence number (0 for legacy v1).
    pub seq: u64,
    /// The `(key, value)` records in write order.
    pub records: Vec<(u64, Value)>,
}

/// What a [`Store::gc`] pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcOutcome {
    /// Segments present when the pass started.
    pub examined: usize,
    /// Segments removed.
    pub evicted: usize,
    /// Bytes freed.
    pub evicted_bytes: u64,
    /// Segments left resident.
    pub kept: usize,
    /// Bytes left resident.
    pub kept_bytes: u64,
}

/// What a [`Store::compact`] pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactOutcome {
    /// Segments before compaction.
    pub segments_before: usize,
    /// Bytes before compaction.
    pub bytes_before: u64,
    /// Bytes after compaction (the single fresh segment).
    pub bytes_after: u64,
    /// Live records carried over.
    pub records: usize,
}

/// A content-addressed store of `(u64 key, Value)` records.
///
/// The store is a directory: a `STORE.json` schema marker, a `segments/`
/// directory of immutable checksummed [`Segment`] files, and a `locks/`
/// directory for [`LockFile`] claims. Open verifies every segment's
/// *header* (fail-stop: one corrupt header rejects the open, with the
/// offending file named) and indexes the keys it records; record values
/// decode lazily on first [`Store::get`], verified against the per-record
/// FNV from the header and then memoized. Duplicate keys resolve by the
/// recorded publish **sequence number** (then mtime, then name): later
/// publishes shadow earlier ones as a recorded fact, immune to clock
/// skew, `touch`es and backdated mtimes.
///
/// Writers batch records and [`Store::publish`] them as one new segment —
/// an atomic-rename of a content-addressed file, so concurrent publishers
/// (other threads, other hosts on a shared mount) can never corrupt each
/// other: distinct batches get distinct names, identical batches collapse
/// to one file.
///
/// # Example
///
/// ```
/// use dsmt_store::Store;
/// use serde::Value;
///
/// let dir = std::env::temp_dir().join(format!("store-doc-{}", std::process::id()));
/// # let _ = std::fs::remove_dir_all(&dir);
/// let mut store = Store::open(&dir, 1).unwrap();
/// store.publish(vec![(7, Value::U64(42))]).unwrap();
/// assert_eq!(store.get(7), Some(&Value::U64(42)));
///
/// // A second handle sees the open-time snapshot, and picks up foreign
/// // segments on refresh().
/// let mut other = Store::open(&dir, 1).unwrap();
/// store.publish(vec![(8, Value::Bool(true))]).unwrap();
/// assert!(other.get(8).is_none());
/// other.refresh().unwrap();
/// assert_eq!(other.get(8), Some(&Value::Bool(true)));
/// # let _ = std::fs::remove_dir_all(&dir);
/// ```
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    segments: Vec<LoadedSegment>,
    index: HashMap<u64, (usize, usize)>,
    /// Mtime of `segments/` observed just before the last full scan, used
    /// by [`Store::refresh`] to skip rescanning an unchanged directory.
    scanned_dir_mtime: Option<SystemTime>,
    /// Highest sequence number seen across loaded segments; the next
    /// publish stamps `max_seq + 1`.
    max_seq: u64,
    mode: IndexMode,
}

/// How much older than "now" the segments directory's mtime must be before
/// [`Store::refresh`] trusts an unchanged mtime and skips the rescan.
/// Directory mtimes can be coarse (whole seconds on some filesystems), so a
/// publish landing within the same mtime granule as our scan would be
/// invisible to a pure mtime compare; within this window we always rescan.
const REFRESH_MTIME_GUARD: std::time::Duration = std::time::Duration::from_secs(2);

/// First read issued against a v2 segment at open. Headers are ~20 bytes
/// per record plus the string table, so one 64 KiB read covers segments of
/// roughly 3000 records; larger headers double the read until it fits.
const HEADER_PREFIX_BYTES: u64 = 64 * 1024;

impl Store {
    /// Opens (creating if needed) a store at `dir` for client schema
    /// `schema`, with the index mode taken from the environment
    /// ([`IndexMode::from_env`]; `DSMT_STORE_EAGER=1` forces eager opens).
    ///
    /// # Errors
    ///
    /// [`StoreError::LegacyLayout`] if the directory holds a v2 JSON cache,
    /// [`StoreError::SchemaMismatch`] if the marker disagrees with
    /// `schema`, [`StoreError::Corrupt`] if a segment fails verification,
    /// or [`StoreError::Io`].
    pub fn open(dir: impl Into<PathBuf>, schema: u32) -> Result<Self, StoreError> {
        Self::open_with(dir, schema, IndexMode::from_env())
    }

    /// Opens (creating if needed) a store at `dir` for client schema
    /// `schema` with an explicit [`IndexMode`]. The time the open took is
    /// recorded in the `store.open_us` histogram.
    ///
    /// # Errors
    ///
    /// As for [`Store::open`].
    pub fn open_with(
        dir: impl Into<PathBuf>,
        schema: u32,
        mode: IndexMode,
    ) -> Result<Self, StoreError> {
        let started = std::time::Instant::now();
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let marker_path = dir.join(MARKER_NAME);
        match std::fs::read_to_string(&marker_path) {
            Ok(text) => {
                let marker: Marker = serde::from_str(&text).map_err(|e| StoreError::Corrupt {
                    file: MARKER_NAME.to_string(),
                    why: e.to_string(),
                })?;
                if marker.format != "dsmt-store" || marker.version != 1 {
                    return Err(StoreError::Corrupt {
                        file: MARKER_NAME.to_string(),
                        why: format!("unknown format {}/v{}", marker.format, marker.version),
                    });
                }
                if marker.schema != schema {
                    return Err(StoreError::SchemaMismatch {
                        found: marker.schema,
                        expected: schema,
                    });
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                let legacy = count_legacy_json(&dir)?;
                if legacy > 0 {
                    return Err(StoreError::LegacyLayout { json_files: legacy });
                }
                let marker = Marker {
                    format: "dsmt-store".to_string(),
                    version: 1,
                    schema,
                };
                atomic_write(&marker_path, serde::to_string_pretty(&marker).as_bytes())?;
            }
            Err(e) => return Err(e.into()),
        }
        std::fs::create_dir_all(dir.join("segments"))?;
        let mut store = Store {
            dir,
            segments: Vec::new(),
            index: HashMap::new(),
            scanned_dir_mtime: None,
            max_seq: 0,
            mode,
        };
        store.load_segments()?;
        let open_us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
        dsmt_obs::histogram!("store.open_us").record(open_us);
        dsmt_obs::info!(
            "store.open",
            segments = store.segments.len(),
            records = store.index.len(),
            eager = matches!(mode, IndexMode::Eager),
            open_us = open_us
        );
        Ok(store)
    }

    /// The schema version recorded in the `STORE.json` marker at `dir`, or
    /// `None` when no marker exists (the directory is not yet a store).
    /// Lets tooling (`dsmt store stat`) open a store of *any* client
    /// schema without guessing.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] on an unreadable or foreign marker,
    /// [`StoreError::Io`] on filesystem failure.
    pub fn marker_schema(dir: impl AsRef<Path>) -> Result<Option<u32>, StoreError> {
        match std::fs::read_to_string(dir.as_ref().join(MARKER_NAME)) {
            Ok(text) => {
                let marker: Marker = serde::from_str(&text).map_err(|e| StoreError::Corrupt {
                    file: MARKER_NAME.to_string(),
                    why: e.to_string(),
                })?;
                if marker.format != "dsmt-store" || marker.version != 1 {
                    return Err(StoreError::Corrupt {
                        file: MARKER_NAME.to_string(),
                        why: format!("unknown format {}/v{}", marker.format, marker.version),
                    });
                }
                Ok(Some(marker.schema))
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    /// The store's root directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// How this handle indexes segments (see [`IndexMode`]).
    #[must_use]
    pub fn mode(&self) -> IndexMode {
        self.mode
    }

    fn segments_dir(&self) -> PathBuf {
        self.dir.join("segments")
    }

    /// The directory [`Store::claim`] locks live in.
    #[must_use]
    pub fn locks_dir(&self) -> PathBuf {
        self.dir.join("locks")
    }

    /// Loads (or header-indexes) every segment on disk.
    fn load_segments(&mut self) -> Result<(), StoreError> {
        self.segments.clear();
        self.index.clear();
        self.max_seq = 0;
        self.scanned_dir_mtime = self.stat_segments_dir();
        let mut files: Vec<(SystemTime, String, PathBuf, u64)> = Vec::new();
        for entry in std::fs::read_dir(self.segments_dir())?.filter_map(Result::ok) {
            let path = entry.path();
            if path.extension().is_none_or(|x| x != "dsrs") {
                continue;
            }
            let meta = entry.metadata()?;
            let name = path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            files.push((
                meta.modified().unwrap_or(SystemTime::UNIX_EPOCH),
                name,
                path,
                meta.len(),
            ));
        }
        // Deterministic segment numbering even on coarse-mtime filesystems
        // (precedence itself is handled per-key in attach).
        files.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
        for (modified, name, path, bytes) in files {
            let loaded = self.load_segment_file(name, path, bytes, modified)?;
            self.attach(loaded);
        }
        Ok(())
    }

    /// Builds a [`LoadedSegment`] from one on-disk file: header-indexed
    /// for v2 files under [`IndexMode::Indexed`], fully decoded otherwise
    /// (legacy v1 has nothing else to offer; eager mode verifies
    /// everything up front by design).
    fn load_segment_file(
        &self,
        name: String,
        path: PathBuf,
        bytes: u64,
        modified: SystemTime,
    ) -> Result<LoadedSegment, StoreError> {
        let corrupt = |name: &str, why: String| StoreError::Corrupt {
            file: name.to_string(),
            why,
        };
        let first = read_prefix(&path, HEADER_PREFIX_BYTES.min(bytes))?;
        let version = peek_version(&first).map_err(|e| corrupt(&name, e.to_string()))?;
        if version != SEGMENT_FORMAT_VERSION || self.mode == IndexMode::Eager {
            let raw = std::fs::read(&path)?;
            let (segment, seq) =
                Segment::decode_with_seq(&raw).map_err(|e| corrupt(&name, e.to_string()))?;
            return Ok(LoadedSegment {
                name,
                path,
                bytes,
                modified,
                version,
                seq,
                data: SegmentData::Eager(segment.records),
            });
        }
        // v2, indexed: parse the checksummed header from a bounded prefix,
        // doubling the read until the whole header is in.
        let mut prefix = first;
        let header = loop {
            match SegmentHeader::parse(&prefix) {
                Ok(h) => break h,
                Err(CodecError::Truncated) if (prefix.len() as u64) < bytes => {
                    let cap = (prefix.len() as u64 * 2).min(bytes);
                    prefix = read_prefix(&path, cap)?;
                }
                Err(e) => return Err(corrupt(&name, e.to_string())),
            }
        };
        // Bound the directory against the actual file before trusting any
        // (offset, len): the records region must exactly fill the space
        // between the header and the trailing file checksum.
        let region = bytes.checked_sub(header.records_base + 8).ok_or_else(|| {
            corrupt(
                &name,
                "file ends inside the segment header region".to_string(),
            )
        })?;
        if header.records_len() != region {
            return Err(corrupt(
                &name,
                format!(
                    "record directory describes {} bytes but the file holds {}",
                    header.records_len(),
                    region
                ),
            ));
        }
        dsmt_obs::counter!("store.header_index_hits").inc();
        let cells = (0..header.entries.len()).map(|_| OnceLock::new()).collect();
        Ok(LoadedSegment {
            name,
            path,
            bytes,
            modified,
            version,
            seq: header.seq,
            data: SegmentData::Lazy {
                strings: header.strings,
                records_base: header.records_base,
                entries: header.entries,
                cells,
            },
        })
    }

    /// Adds a loaded segment and merges its keys into the index under the
    /// precedence rule — a newly discovered segment only claims a key from
    /// a segment it actually outranks.
    fn attach(&mut self, loaded: LoadedSegment) {
        self.max_seq = self.max_seq.max(loaded.seq);
        let seg_idx = self.segments.len();
        self.segments.push(loaded);
        let (segments, index) = (&self.segments, &mut self.index);
        let seg = &segments[seg_idx];
        for rec_idx in 0..seg.records_len() {
            let key = seg.key_at(rec_idx);
            match index.entry(key) {
                std::collections::hash_map::Entry::Vacant(slot) => {
                    slot.insert((seg_idx, rec_idx));
                }
                std::collections::hash_map::Entry::Occupied(mut slot) => {
                    let (winner, _) = *slot.get();
                    // Within one segment, write order decides (a batch may
                    // repeat a key); across segments, precedence does.
                    if winner == seg_idx || segments[winner].precedence() < seg.precedence() {
                        slot.insert((seg_idx, rec_idx));
                    }
                }
            }
        }
    }

    /// Decodes (or fetches the memoized copy of) the record at `(seg,
    /// rec)`. For lazy segments this is the verify-on-read point: the
    /// record's bytes are read from their `(offset, len)` slice, checked
    /// against the FNV recorded in the header, decoded, and memoized.
    fn decode_at(&self, seg: usize, rec: usize) -> Result<&Value, StoreError> {
        let s = &self.segments[seg];
        match &s.data {
            SegmentData::Eager(records) => Ok(&records[rec].1),
            SegmentData::Lazy {
                strings,
                records_base,
                entries,
                cells,
            } => {
                if let Some(value) = cells[rec].get() {
                    return Ok(value);
                }
                let e = &entries[rec];
                let corrupt = |why: String| StoreError::Corrupt {
                    file: s.name.clone(),
                    why,
                };
                let mut f = std::fs::File::open(&s.path)?;
                f.seek(SeekFrom::Start(records_base + e.offset))?;
                let mut raw = vec![
                    0u8;
                    usize::try_from(e.len).map_err(|_| {
                        corrupt(format!("record 0x{:016x} length overflows", e.key))
                    })?
                ];
                f.read_exact(&mut raw)?;
                if fnv1a64(&raw) != e.fnv {
                    return Err(corrupt(format!(
                        "record 0x{:016x} failed its FNV check",
                        e.key
                    )));
                }
                let mut slice = raw.as_slice();
                let value = get_value(&mut slice, strings)
                    .map_err(|err| corrupt(format!("record 0x{:016x}: {err}", e.key)))?;
                if !slice.is_empty() {
                    return Err(corrupt(format!(
                        "record 0x{:016x} has {} trailing bytes",
                        e.key,
                        slice.len()
                    )));
                }
                dsmt_obs::counter!("store.records_lazy_decoded").inc();
                // A concurrent reader may have raced us here; either copy
                // decoded from the same verified bytes.
                let _ = cells[rec].set(value);
                Ok(cells[rec].get().expect("cell just initialized"))
            }
        }
    }

    /// Looks up the record stored under `key` with the highest precedence.
    ///
    /// A record whose bytes fail verification at this point (possible only
    /// for lazily indexed segments — eager opens verified everything
    /// already) reads as *absent*: the corruption is counted
    /// (`store.record_corrupt`) and logged, and callers that re-simulate
    /// on miss heal the store by publishing a fresh copy. Callers that
    /// must distinguish corrupt from missing use [`Store::try_get`].
    #[must_use]
    pub fn get(&self, key: u64) -> Option<&Value> {
        let &(seg, rec) = self.index.get(&key)?;
        match self.decode_at(seg, rec) {
            Ok(value) => Some(value),
            Err(e) => {
                dsmt_obs::counter!("store.record_corrupt").inc();
                dsmt_obs::warn!(
                    "store.get_corrupt",
                    key = format!("{key:016x}"),
                    why = e.to_string()
                );
                None
            }
        }
    }

    /// Like [`Store::get`], but surfaces a record that exists and fails
    /// verification as [`StoreError::Corrupt`] instead of `None`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] when the winning record's bytes fail their
    /// FNV check or decode, [`StoreError::Io`] if reading them fails.
    pub fn try_get(&self, key: u64) -> Result<Option<&Value>, StoreError> {
        match self.index.get(&key) {
            None => Ok(None),
            Some(&(seg, rec)) => self.decode_at(seg, rec).map(Some),
        }
    }

    /// The FNV-1a checksum recorded in the segment header for the record
    /// winning `key` — a content identity that is known *without decoding
    /// the record* (serve derives `/cells` ETags from it). `None` when the
    /// key is absent or its segment was loaded eagerly (legacy v1 files
    /// record no per-record checksums).
    #[must_use]
    pub fn record_fnv(&self, key: u64) -> Option<u64> {
        let &(seg, rec) = self.index.get(&key)?;
        match &self.segments[seg].data {
            SegmentData::Lazy { entries, .. } => Some(entries[rec].fnv),
            SegmentData::Eager(_) => None,
        }
    }

    /// The file name of the segment currently winning `key` — a stable
    /// identity clients can use to deduplicate per-segment work (e.g.
    /// touching a segment once per sweep instead of once per hit).
    #[must_use]
    pub fn segment_name_of(&self, key: u64) -> Option<&str> {
        let &(seg, _) = self.index.get(&key)?;
        Some(&self.segments[seg].name)
    }

    /// Whether any record is stored under `key`.
    #[must_use]
    pub fn contains(&self, key: u64) -> bool {
        self.index.contains_key(&key)
    }

    /// Number of distinct keys.
    #[must_use]
    pub fn record_count(&self) -> usize {
        self.index.len()
    }

    /// Number of segments on disk.
    #[must_use]
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Total bytes held by segment files.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.segments.iter().map(|s| s.bytes).sum()
    }

    /// Metadata for every segment, ascending precedence order (the last
    /// entry wins any key it shares with an earlier one).
    #[must_use]
    pub fn segment_infos(&self) -> Vec<SegmentInfo> {
        let mut order: Vec<usize> = (0..self.segments.len()).collect();
        order.sort_by(|&a, &b| {
            self.segments[a]
                .precedence()
                .cmp(&self.segments[b].precedence())
        });
        order
            .into_iter()
            .map(|i| self.segment_infos_for(i))
            .collect()
    }

    /// Streams every segment's records, ascending precedence order, one
    /// fully decoded segment in memory at a time (lazily indexed segments
    /// are decoded from disk *without* being memoized into this handle).
    /// Folding the stream left-to-right therefore reproduces the index:
    /// a later segment's records overwrite an earlier one's — which is
    /// exactly how [`Store::compact`] consumes it.
    pub fn iter_segments(&self) -> impl Iterator<Item = Result<SegmentRecords, StoreError>> + '_ {
        let mut order: Vec<usize> = (0..self.segments.len()).collect();
        order.sort_by(|&a, &b| {
            self.segments[a]
                .precedence()
                .cmp(&self.segments[b].precedence())
        });
        order.into_iter().map(move |i| self.decode_segment_at(i))
    }

    /// Fully decodes segment `i` (fail-stop, whole-file verification for
    /// lazy segments) without memoizing anything into the handle.
    fn decode_segment_at(&self, i: usize) -> Result<SegmentRecords, StoreError> {
        let s = &self.segments[i];
        let records = match &s.data {
            SegmentData::Eager(records) => records.clone(),
            SegmentData::Lazy { .. } => {
                let raw = std::fs::read(&s.path)?;
                Segment::decode(&raw)
                    .map_err(|e| StoreError::Corrupt {
                        file: s.name.clone(),
                        why: e.to_string(),
                    })?
                    .records
            }
        };
        Ok(SegmentRecords {
            name: s.name.clone(),
            version: s.version,
            seq: s.seq,
            records,
        })
    }

    /// Publishes `records` as one new immutable segment (atomic rename of
    /// a content-addressed file, stamped with the next sequence number)
    /// and indexes it. Returns the new segment's metadata, or `None` for
    /// an empty batch.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failure.
    pub fn publish(
        &mut self,
        records: Vec<(u64, Value)>,
    ) -> Result<Option<SegmentInfo>, StoreError> {
        if records.is_empty() {
            return Ok(None);
        }
        let seq = self.max_seq + 1;
        let segment = Segment::new(records);
        let bytes = segment.encode_with_seq(seq);
        let name = Segment::content_name(&bytes);
        let path = self.segments_dir().join(&name);
        atomic_write(&path, &bytes)?;
        let meta = std::fs::metadata(&path)?;
        self.max_seq = seq;
        dsmt_obs::counter!("store.segments_published").inc();
        dsmt_obs::counter!("store.bytes_published").add(meta.len());
        dsmt_obs::info!(
            "store.publish",
            segment = name.as_str(),
            records = segment.records.len(),
            seq = seq,
            bytes = meta.len()
        );
        // Segment identity skips the seq, so an identical batch
        // re-published lands on the same file — now rewritten with the
        // store's freshest seq. Re-stamp the in-memory copy and re-assert
        // its records as the shadow winners; a reopen reads the same seq
        // from the header and resolves keys identically.
        if let Some(pos) = self.segments.iter().position(|s| s.name == name) {
            self.segments[pos].seq = seq;
            self.segments[pos].modified = meta.modified().unwrap_or(SystemTime::UNIX_EPOCH);
            for (rec_idx, (key, _)) in segment.records.iter().enumerate() {
                self.index.insert(*key, (pos, rec_idx));
            }
            return Ok(Some(self.segment_infos_for(pos)));
        }
        let loaded = LoadedSegment {
            name,
            path,
            bytes: meta.len(),
            modified: meta.modified().unwrap_or(SystemTime::UNIX_EPOCH),
            version: SEGMENT_FORMAT_VERSION,
            seq,
            // The records were just in our hands; no reason to drop them
            // and lazily re-read our own write.
            data: SegmentData::Eager(segment.records),
        };
        self.attach(loaded);
        Ok(Some(self.segment_infos_for(self.segments.len() - 1)))
    }

    fn segment_infos_for(&self, idx: usize) -> SegmentInfo {
        let s = &self.segments[idx];
        SegmentInfo {
            name: s.name.clone(),
            bytes: s.bytes,
            records: s.records_len(),
            modified: s.modified,
            version: s.version,
            seq: s.seq,
            lazy: s.is_lazy(),
        }
    }

    /// Re-touches the segment holding `key` (best effort) so LRU eviction
    /// tracks use, not just creation.
    ///
    /// Since precedence became the recorded sequence number, touching is
    /// purely an LRU affair: it can no longer promote a segment's shadowed
    /// records over a newer publish (the hazard the old mtime rule had for
    /// clients that overwrite keys with different values). Records decoded
    /// in memory stay readable even if another process evicts the file
    /// meanwhile.
    pub fn touch(&self, key: u64) {
        if let Some(&(seg, _)) = self.index.get(&key) {
            if let Ok(f) = std::fs::OpenOptions::new()
                .write(true)
                .open(&self.segments[seg].path)
            {
                let _ = f.set_modified(SystemTime::now());
            }
        }
    }

    /// Mtime of the segments directory itself, which the kernel bumps on
    /// every entry add/remove — a one-stat change detector for publishes.
    fn stat_segments_dir(&self) -> Option<SystemTime> {
        std::fs::metadata(self.segments_dir())
            .and_then(|m| m.modified())
            .ok()
    }

    /// Picks up segments published by other processes since open (or the
    /// last refresh). In-memory state for already-loaded segments is kept.
    ///
    /// Polling callers (`dsmt shard status --watch`, the serve daemon's
    /// status endpoint) hit this every few seconds; re-statting every
    /// segment each poll is wasted work when nothing was published. A new
    /// segment file always bumps the `segments/` directory's own mtime, so
    /// an unchanged dir mtime means an unchanged listing — the scan is
    /// skipped (counted by `store.refresh_skipped`). Because directory
    /// mtimes can be coarse, the skip only triggers once the mtime is at
    /// least `REFRESH_MTIME_GUARD` old: a publish racing our previous
    /// scan inside one mtime granule is rescanned, never missed.
    ///
    /// # Errors
    ///
    /// As for [`Store::open`] (a newly appeared corrupt segment fails).
    pub fn refresh(&mut self) -> Result<usize, StoreError> {
        let dir_mtime = self.stat_segments_dir();
        if let (Some(prev), Some(cur)) = (self.scanned_dir_mtime, dir_mtime) {
            let settled = SystemTime::now()
                .duration_since(cur)
                .is_ok_and(|age| age >= REFRESH_MTIME_GUARD);
            if prev == cur && settled {
                dsmt_obs::counter!("store.refresh_skipped").inc();
                return Ok(0);
            }
        }
        self.scanned_dir_mtime = dir_mtime;
        let known: std::collections::HashSet<String> =
            self.segments.iter().map(|s| s.name.clone()).collect();
        let mut fresh: Vec<(SystemTime, String, PathBuf, u64)> = Vec::new();
        for entry in std::fs::read_dir(self.segments_dir())?.filter_map(Result::ok) {
            let path = entry.path();
            if path.extension().is_none_or(|x| x != "dsrs") {
                continue;
            }
            let name = path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            if known.contains(&name) {
                continue;
            }
            let meta = entry.metadata()?;
            fresh.push((
                meta.modified().unwrap_or(SystemTime::UNIX_EPOCH),
                name,
                path,
                meta.len(),
            ));
        }
        fresh.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
        let found = fresh.len();
        for (modified, name, path, bytes) in fresh {
            dsmt_obs::counter!("store.segments_read").inc();
            dsmt_obs::counter!("store.bytes_read").add(bytes);
            let loaded = self.load_segment_file(name, path, bytes, modified)?;
            // attach() compares precedence per key, so a freshly
            // discovered segment with an *older* seq (published before
            // ours but seen late) cannot steal keys it already lost.
            self.attach(loaded);
        }
        Ok(found)
    }

    /// Tries to claim `name` in the store's lock directory; `Ok(None)`
    /// means another claimant holds it.
    ///
    /// # Errors
    ///
    /// Any I/O error other than the lock already existing.
    pub fn claim(&self, name: &str) -> std::io::Result<Option<LockFile>> {
        LockFile::acquire(self.locks_dir(), name)
    }

    /// Evicts least-recently-used segments until the store fits in
    /// `max_bytes`. Returns what was examined, evicted and kept.
    ///
    /// Recency is mtime order — sequence numbers decide *shadowing*, not
    /// *eviction*: a heavily read old segment deserves to stay resident
    /// even though newer publishes outrank it for overlapping keys.
    ///
    /// The pass is guarded by a `gc` lock claim so concurrent collectors
    /// (two sweeps finishing together) do not double-evict; the loser
    /// returns an all-kept outcome, with a warning on stderr naming the
    /// claim holder — a claim left by a worker that died without unwinding
    /// must be removed by hand (its holder pid is recorded in the file),
    /// or the byte cap would silently stop being enforced. Eviction is
    /// best-effort: a segment that cannot be removed is counted as kept.
    pub fn gc(&mut self, max_bytes: u64) -> GcOutcome {
        let Ok(Some(_guard)) = self.claim("gc") else {
            dsmt_obs::counter!("store.lock_contention").inc();
            dsmt_obs::warn!(
                "store.gc_skipped",
                lock = self.locks_dir().join("gc.lock").display().to_string(),
                holder = LockFile::holder(self.locks_dir(), "gc")
                    .unwrap_or_else(|| "unknown holder".to_string()),
                hint = "if no collector is running, the claim is stale — \
                        remove the file to re-enable eviction"
            );
            return GcOutcome {
                examined: self.segments.len(),
                kept: self.segments.len(),
                kept_bytes: self.total_bytes(),
                ..GcOutcome::default()
            };
        };
        // Re-stat mtimes first: touches (this process's or another's)
        // happen on disk, and recency must reflect them.
        for seg in &mut self.segments {
            if let Ok(meta) = std::fs::metadata(&seg.path) {
                seg.modified = meta.modified().unwrap_or(seg.modified);
            }
        }
        // LRU order over current segments (self.segments is load-ordered,
        // but publishes appended since may interleave with touches).
        let mut order: Vec<usize> = (0..self.segments.len()).collect();
        order.sort_by(|&a, &b| {
            let (sa, sb) = (&self.segments[a], &self.segments[b]);
            sa.modified.cmp(&sb.modified).then(sa.name.cmp(&sb.name))
        });
        let mut outcome = GcOutcome {
            examined: self.segments.len(),
            ..GcOutcome::default()
        };
        let mut excess = self.total_bytes().saturating_sub(max_bytes);
        let mut evicted_idx: Vec<usize> = Vec::new();
        for idx in order {
            let seg = &self.segments[idx];
            let evicted = excess > 0 && std::fs::remove_file(&seg.path).is_ok();
            if evicted {
                excess = excess.saturating_sub(seg.bytes);
                outcome.evicted += 1;
                outcome.evicted_bytes += seg.bytes;
                evicted_idx.push(idx);
            } else {
                outcome.kept += 1;
                outcome.kept_bytes += seg.bytes;
            }
        }
        if !outcome.is_noop() {
            evicted_idx.sort_unstable();
            for idx in evicted_idx.into_iter().rev() {
                self.segments.remove(idx);
            }
            self.reindex();
            dsmt_obs::counter!("store.gc_evictions").add(outcome.evicted as u64);
            dsmt_obs::info!(
                "store.gc",
                evicted = outcome.evicted,
                evicted_bytes = outcome.evicted_bytes,
                kept = outcome.kept,
                kept_bytes = outcome.kept_bytes,
                max_bytes = max_bytes
            );
        }
        outcome
    }

    /// Folds every live record into one fresh segment (in ascending key
    /// order, so compaction is deterministic) and removes the old
    /// segments. Shadowed duplicates are dropped, and legacy headerless
    /// v1 segments are rewritten into the current headered form — this is
    /// the in-place migration path for pre-upgrade store directories.
    ///
    /// Segments stream through one at a time ([`Store::iter_segments`]),
    /// so peak memory is the live records plus a single decoded segment —
    /// not every shadowed copy ever published.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failure; the store is reloaded
    /// from disk on success.
    pub fn compact(&mut self) -> Result<CompactOutcome, StoreError> {
        let _span = dsmt_obs::span("store.compact")
            .field("segments_before", self.segments.len())
            .field("bytes_before", self.total_bytes());
        let before_segments = self.segments.len();
        let before_bytes = self.total_bytes();
        let mut live: HashMap<u64, Value> = HashMap::with_capacity(self.index.len());
        for part in self.iter_segments() {
            // Ascending precedence: later segments overwrite earlier ones,
            // reproducing exactly what the index resolves.
            for (key, value) in part?.records {
                live.insert(key, value);
            }
        }
        let mut records: Vec<(u64, Value)> = live.into_iter().collect();
        records.sort_unstable_by_key(|&(key, _)| key);
        let n_records = records.len();
        let old_names: Vec<(String, PathBuf)> = self
            .segments
            .iter()
            .map(|s| (s.name.clone(), s.path.clone()))
            .collect();
        let fresh = self.publish(records)?;
        let fresh_name = fresh.as_ref().map(|i| i.name.clone());
        for (name, path) in old_names {
            if Some(&name) != fresh_name.as_ref() {
                let _ = std::fs::remove_file(&path);
            }
        }
        self.load_segments()?;
        Ok(CompactOutcome {
            segments_before: before_segments,
            bytes_before: before_bytes,
            bytes_after: self.total_bytes(),
            records: n_records,
        })
    }

    /// Rebuilds the key index under the store's one precedence rule:
    /// highest `(seq, mtime, name)` wins — the same order [`Store::open`]
    /// applies, so the in-memory view and a reopen always resolve a
    /// duplicated key identically.
    fn reindex(&mut self) {
        let mut order: Vec<usize> = (0..self.segments.len()).collect();
        order.sort_by(|&a, &b| {
            self.segments[a]
                .precedence()
                .cmp(&self.segments[b].precedence())
        });
        self.index.clear();
        for seg_idx in order {
            for rec_idx in 0..self.segments[seg_idx].records_len() {
                let key = self.segments[seg_idx].key_at(rec_idx);
                self.index.insert(key, (seg_idx, rec_idx));
            }
        }
    }
}

/// Reads up to `cap` bytes from the start of `path`.
fn read_prefix(path: &Path, cap: u64) -> std::io::Result<Vec<u8>> {
    let f = std::fs::File::open(path)?;
    let mut buf = Vec::with_capacity(usize::try_from(cap).unwrap_or(usize::MAX));
    f.take(cap).read_to_end(&mut buf)?;
    Ok(buf)
}

impl GcOutcome {
    fn is_noop(&self) -> bool {
        self.evicted == 0
    }
}

/// Whether `name` looks like a v2 cache entry file: `<16 hex digits>.json`
/// (the old per-scenario layout named files by the scenario's hex cache
/// key). Deliberately narrow so unrelated JSON sitting in the directory —
/// a `plan.json`, an exported report — is neither flagged at open nor
/// touched by migration.
pub fn is_v2_entry_name(name: &str) -> bool {
    name.strip_suffix(".json")
        .is_some_and(|stem| stem.len() == 16 && stem.bytes().all(|b| b.is_ascii_hexdigit()))
}

/// Counts v2-style per-scenario JSON entries directly under `dir`.
fn count_legacy_json(dir: &Path) -> std::io::Result<usize> {
    let mut n = 0;
    match std::fs::read_dir(dir) {
        Ok(rd) => {
            for entry in rd.filter_map(Result::ok) {
                if entry
                    .path()
                    .file_name()
                    .is_some_and(|f| is_v2_entry_name(&f.to_string_lossy()))
                {
                    n += 1;
                }
            }
            Ok(n)
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(0),
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("dsmt-store-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn value(n: u64) -> Value {
        Value::Object(vec![
            ("n".to_string(), Value::U64(n)),
            ("label".to_string(), Value::Str(format!("record-{n}"))),
        ])
    }

    #[test]
    fn publish_then_get_round_trips_across_reopen() {
        let dir = temp_store("roundtrip");
        let mut store = Store::open(&dir, 3).expect("open");
        assert!(store.get(1).is_none());
        store.publish(vec![(1, value(1)), (2, value(2))]).unwrap();
        assert_eq!(store.get(1), Some(&value(1)));
        assert_eq!(store.record_count(), 2);
        drop(store);
        let store = Store::open(&dir, 3).expect("reopen");
        assert_eq!(store.get(2), Some(&value(2)));
        assert_eq!(store.segment_count(), 1);
        assert!(store.total_bytes() > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn later_segments_shadow_earlier_ones() {
        let dir = temp_store("shadow");
        let mut store = Store::open(&dir, 1).expect("open");
        store.publish(vec![(7, value(1))]).unwrap();
        store.publish(vec![(7, value(2))]).unwrap();
        assert_eq!(store.get(7), Some(&value(2)));
        assert_eq!(store.record_count(), 1);
        assert_eq!(store.segment_count(), 2);
        drop(store);
        // The shadow survives a reload (recorded seq order — no sleeps
        // needed, unlike the old mtime rule).
        let store = Store::open(&dir, 1).expect("reopen");
        assert_eq!(store.get(7), Some(&value(2)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sequence_numbers_are_stamped_and_monotonic_across_reopen() {
        let dir = temp_store("seq-monotonic");
        let mut store = Store::open(&dir, 1).expect("open");
        store.publish(vec![(1, value(1))]).unwrap();
        store.publish(vec![(2, value(2))]).unwrap();
        drop(store);
        let mut store = Store::open(&dir, 1).expect("reopen");
        store.publish(vec![(3, value(3))]).unwrap();
        let mut seqs: Vec<u64> = store.segment_infos().iter().map(|i| i.seq).collect();
        seqs.sort_unstable();
        assert_eq!(seqs, vec![1, 2, 3], "reopen continues the sequence");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sequence_precedence_survives_backdated_mtimes() {
        let dir = temp_store("seq-backdate");
        let mut store = Store::open(&dir, 1).expect("open");
        store.publish(vec![(7, value(1))]).unwrap();
        store.publish(vec![(7, value(2))]).unwrap();
        // Adversarially backdate the *winning* segment's file mtime far
        // into the past. The old (mtime, name) rule would now resolve 7 to
        // the stale value on reopen; the recorded seq must not.
        let infos = store.segment_infos();
        let winner = infos.iter().max_by_key(|i| i.seq).unwrap();
        assert_eq!(winner.seq, 2);
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(dir.join("segments").join(&winner.name))
            .unwrap();
        f.set_modified(SystemTime::UNIX_EPOCH + std::time::Duration::from_secs(1))
            .unwrap();
        drop(f);
        drop(store);
        let store = Store::open(&dir, 1).expect("reopen");
        assert_eq!(
            store.get(7),
            Some(&value(2)),
            "recorded seq outranks a backdated mtime"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn schema_mismatch_and_legacy_layout_fail_stop() {
        let dir = temp_store("schema");
        drop(Store::open(&dir, 2).expect("open v2"));
        assert_eq!(Store::marker_schema(&dir), Ok(Some(2)));
        assert_eq!(
            Store::open(&dir, 3).unwrap_err(),
            StoreError::SchemaMismatch {
                found: 2,
                expected: 3
            }
        );
        let legacy = temp_store("legacy");
        std::fs::create_dir_all(&legacy).unwrap();
        std::fs::write(legacy.join("0011223344556677.json"), "{}").unwrap();
        assert_eq!(Store::marker_schema(&legacy), Ok(None));
        assert_eq!(
            Store::open(&legacy, 3).unwrap_err(),
            StoreError::LegacyLayout { json_files: 1 }
        );
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&legacy);
    }

    #[test]
    fn corrupt_segment_headers_are_rejected_by_name_at_open() {
        let dir = temp_store("corrupt");
        let mut store = Store::open(&dir, 1).expect("open");
        let info = store.publish(vec![(1, value(1))]).unwrap().unwrap();
        drop(store);
        let path = dir.join("segments").join(&info.name);
        let mut bytes = std::fs::read(&path).unwrap();
        // Byte 8 is the seq field: inside the checksummed header, so even
        // a header-only indexed open must reject it.
        bytes[8] ^= 0xff;
        std::fs::write(&path, bytes).unwrap();
        match Store::open(&dir, 1) {
            Err(StoreError::Corrupt { file, .. }) => assert_eq!(file, info.name),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn record_corruption_fails_at_get_not_open_and_eagerly_at_open() {
        let dir = temp_store("record-corrupt");
        let mut store = Store::open(&dir, 1).expect("open");
        let info = store
            .publish(vec![(1, value(1)), (2, value(2))])
            .unwrap()
            .unwrap();
        drop(store);
        let path = dir.join("segments").join(&info.name);
        let bytes = std::fs::read(&path).unwrap();
        let header = crate::SegmentHeader::parse(&bytes).expect("header");
        let mut corrupt = bytes.clone();
        // Flip a byte of record 2's body; the header stays intact.
        let base = header.records_base as usize + header.entries[1].offset as usize;
        corrupt[base] ^= 0xff;
        std::fs::write(&path, &corrupt).unwrap();

        // Indexed open succeeds — the header verifies — and the damage
        // surfaces at the corrupted record only, as Corrupt via try_get
        // and as a logged miss via get. The intact record still reads.
        let store = Store::open(&dir, 1).expect("indexed open reads headers only");
        assert_eq!(store.get(1), Some(&value(1)));
        assert!(matches!(
            store.try_get(2),
            Err(StoreError::Corrupt { file, .. }) if file == info.name
        ));
        assert_eq!(store.get(2), None, "corrupt reads as absent via get()");
        drop(store);

        // Eager mode keeps the old verify-everything-at-open contract.
        match Store::open_with(&dir, 1, IndexMode::Eager) {
            Err(StoreError::Corrupt { file, .. }) => assert_eq!(file, info.name),
            other => panic!("expected eager open to fail, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lazily_decoded_records_are_memoized() {
        let dir = temp_store("memoize");
        let mut store = Store::open(&dir, 1).expect("open");
        let info = store.publish(vec![(5, value(5))]).unwrap().unwrap();
        drop(store);
        let store = Store::open(&dir, 1).expect("reopen");
        assert!(store.segment_infos()[0].lazy);
        assert_eq!(store.get(5), Some(&value(5)), "first get decodes");
        // Remove the file out from under the handle: a memoized record
        // must keep reading without touching disk.
        std::fs::remove_file(dir.join("segments").join(&info.name)).unwrap();
        assert_eq!(store.get(5), Some(&value(5)), "second get is memoized");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn identical_batches_collapse_to_one_segment() {
        let dir = temp_store("idempotent");
        let mut store = Store::open(&dir, 1).expect("open");
        let a = store.publish(vec![(1, value(1))]).unwrap().unwrap();
        let b = store.publish(vec![(1, value(1))]).unwrap().unwrap();
        assert_eq!(a.name, b.name);
        assert_eq!(store.segment_count(), 1);
        assert!(b.seq > a.seq, "the re-publish re-stamps the seq");
        assert!(store.publish(Vec::new()).unwrap().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn republished_batches_win_shadowing_in_memory_and_on_reopen() {
        let dir = temp_store("republish-shadow");
        let mut store = Store::open(&dir, 1).expect("open");
        store.publish(vec![(7, value(1))]).unwrap();
        store.publish(vec![(7, value(2))]).unwrap();
        // Re-publishing the first batch collapses onto its old file but
        // rewrites it with a fresher seq: it must become the shadow winner
        // both for this handle and for a reopen (which orders by seq).
        store.publish(vec![(7, value(1))]).unwrap();
        assert_eq!(store.segment_count(), 2);
        assert_eq!(store.get(7), Some(&value(1)), "in-memory view");
        drop(store);
        let store = Store::open(&dir, 1).expect("reopen");
        assert_eq!(store.get(7), Some(&value(1)), "reopened view agrees");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mixed_directories_read_both_versions_with_v2_winning() {
        let dir = temp_store("mixed");
        let mut store = Store::open(&dir, 1).expect("open");
        store.publish(vec![(7, value(2)), (8, value(8))]).unwrap();
        drop(store);
        // Fabricate a legacy headerless v1 segment that also claims key 7
        // — written *after* the v2 publish, so under the old mtime rule it
        // would win. As seq 0 it must lose to any v2 segment.
        std::thread::sleep(std::time::Duration::from_millis(20));
        let legacy = Segment::new(vec![(7, value(1)), (9, value(9))]).encode_legacy();
        let legacy_name = Segment::content_name(&legacy);
        std::fs::write(dir.join("segments").join(&legacy_name), &legacy).unwrap();

        let store = Store::open(&dir, 1).expect("mixed open");
        assert_eq!(store.get(7), Some(&value(2)), "v2 outranks newer-mtime v1");
        assert_eq!(store.get(8), Some(&value(8)));
        assert_eq!(store.get(9), Some(&value(9)), "v1-only keys still read");
        let infos = store.segment_infos();
        let v1 = infos.iter().find(|i| i.version == 1).expect("v1 listed");
        let v2 = infos.iter().find(|i| i.version == 2).expect("v2 listed");
        assert_eq!(v1.seq, 0);
        assert!(!v1.lazy, "headerless segments load eagerly");
        assert!(v2.lazy, "headered segments index lazily");
        drop(store);

        // refresh() discovering the legacy file late must resolve the
        // same way as a cold open.
        let dir2 = temp_store("mixed-refresh");
        let mut a = Store::open(&dir2, 1).expect("open a");
        let mut b = Store::open(&dir2, 1).expect("open b");
        a.publish(vec![(7, value(2))]).unwrap();
        std::fs::write(dir2.join("segments").join(&legacy_name), &legacy).unwrap();
        assert_eq!(b.refresh().expect("refresh"), 2);
        assert_eq!(b.get(7), Some(&value(2)), "refresh agrees with reopen");
        assert_eq!(b.get(9), Some(&value(9)));
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&dir2);
    }

    #[test]
    fn compact_rewrites_legacy_segments_into_headered_form() {
        let dir = temp_store("compact-migrate");
        let mut store = Store::open(&dir, 1).expect("open");
        store.publish(vec![(7, value(2))]).unwrap();
        let legacy = Segment::new(vec![(7, value(1)), (9, value(9))]).encode_legacy();
        std::fs::write(
            dir.join("segments").join(Segment::content_name(&legacy)),
            &legacy,
        )
        .unwrap();
        store.refresh().expect("see the legacy file");
        let outcome = store.compact().expect("compact");
        assert_eq!(outcome.records, 2);
        assert_eq!(store.segment_count(), 1);
        let info = &store.segment_infos()[0];
        assert_eq!(info.version, SEGMENT_FORMAT_VERSION, "migrated in place");
        assert_eq!(store.get(7), Some(&value(2)), "winner preserved");
        assert_eq!(store.get(9), Some(&value(9)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn v2_entry_names_are_detected_narrowly() {
        assert!(is_v2_entry_name("00112233aabbccdd.json"));
        assert!(is_v2_entry_name("FFFFFFFFFFFFFFFF.json"));
        for foreign in [
            "plan.json",
            "STORE.json",
            "report.json",
            "00112233aabbccdd.dsr",
            "0011.json",
            "00112233aabbccddee.json",
            "00112233aabbccdg.json",
            "00112233aabbccdd",
        ] {
            assert!(!is_v2_entry_name(foreign), "{foreign}");
        }
    }

    #[test]
    fn foreign_json_does_not_trigger_the_legacy_fail_stop() {
        let dir = temp_store("foreign-json");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("plan.json"), "{}").unwrap();
        let store = Store::open(&dir, 3).expect("foreign JSON is not a v2 cache");
        assert_eq!(store.record_count(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_evicts_lru_segments_down_to_cap() {
        let dir = temp_store("gc");
        let mut store = Store::open(&dir, 1).expect("open");
        for n in 0..4 {
            store.publish(vec![(n, value(n))]).unwrap();
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        let infos = store.segment_infos();
        assert_eq!(infos.len(), 4);
        let newest = infos.last().unwrap().clone();
        // Touch key 0 so its (oldest) segment becomes the most recent.
        std::thread::sleep(std::time::Duration::from_millis(20));
        store.touch(0);
        let outcome = store.gc(newest.bytes * 2);
        assert_eq!(outcome.examined, 4);
        assert_eq!(outcome.evicted, 2);
        assert_eq!(outcome.kept, 2);
        assert!(store.contains(0), "touched segment survives");
        assert!(store.contains(3), "newest segment survives");
        assert!(!store.contains(1) && !store.contains(2));
        // A generous cap evicts nothing; zero empties the store.
        assert_eq!(store.gc(u64::MAX).evicted, 0);
        assert_eq!(store.gc(0).evicted, 2);
        assert_eq!(store.record_count(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compact_folds_everything_into_one_segment() {
        let dir = temp_store("compact");
        let mut store = Store::open(&dir, 1).expect("open");
        store.publish(vec![(1, value(1)), (2, value(2))]).unwrap();
        store.publish(vec![(2, value(22)), (3, value(3))]).unwrap();
        let outcome = store.compact().expect("compact");
        assert_eq!(outcome.segments_before, 2);
        assert_eq!(outcome.records, 3);
        assert_eq!(store.segment_count(), 1);
        assert_eq!(store.get(2), Some(&value(22)), "shadow winner survives");
        assert_eq!(store.get(1), Some(&value(1)));
        // Compacting a compacted store is a no-op fixed point.
        let again = store.compact().expect("recompact");
        assert_eq!(again.bytes_before, again.bytes_after);
        assert_eq!(store.segment_count(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn iter_segments_streams_in_precedence_order() {
        let dir = temp_store("iter");
        let mut store = Store::open(&dir, 1).expect("open");
        store.publish(vec![(1, value(1))]).unwrap();
        store.publish(vec![(1, value(11)), (2, value(2))]).unwrap();
        drop(store);
        let store = Store::open(&dir, 1).expect("reopen (lazy)");
        let parts: Vec<SegmentRecords> = store
            .iter_segments()
            .collect::<Result<_, _>>()
            .expect("stream");
        assert_eq!(parts.len(), 2);
        assert!(parts[0].seq < parts[1].seq, "ascending precedence");
        assert_eq!(parts[0].records, vec![(1, value(1))]);
        assert_eq!(parts[1].records, vec![(1, value(11)), (2, value(2))]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn refresh_picks_up_foreign_segments() {
        let dir = temp_store("refresh");
        let mut a = Store::open(&dir, 1).expect("open a");
        let mut b = Store::open(&dir, 1).expect("open b");
        a.publish(vec![(1, value(1))]).unwrap();
        assert!(b.get(1).is_none(), "open-time snapshot");
        assert_eq!(b.refresh().expect("refresh"), 1);
        assert_eq!(b.get(1), Some(&value(1)));
        assert_eq!(b.refresh().expect("refresh again"), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Forces the segments directory's mtime into the past so the refresh
    /// short-circuit's settle guard is satisfied without sleeping.
    fn backdate_segments_dir(dir: &Path) {
        let seg_dir = dir.join("segments");
        let f = std::fs::File::open(&seg_dir).expect("open segments dir");
        f.set_modified(SystemTime::now() - std::time::Duration::from_secs(30))
            .expect("backdate dir mtime");
    }

    #[test]
    fn refresh_short_circuits_on_unchanged_dir_mtime() {
        let dir = temp_store("refresh-skip");
        let mut a = Store::open(&dir, 1).expect("open a");
        let mut b = Store::open(&dir, 1).expect("open b");
        a.publish(vec![(1, value(1))]).unwrap();
        assert_eq!(b.refresh().expect("refresh"), 1);

        // The publish just bumped the dir mtime, so the mtime is too fresh
        // to trust; a refresh now must still rescan (finding nothing new).
        assert_eq!(b.refresh().expect("fresh-mtime refresh"), 0);

        // Settle the mtime into the past: the next refresh rescans once
        // (mtime changed), then the one after short-circuits.
        backdate_segments_dir(&dir);
        assert_eq!(b.refresh().expect("post-backdate rescan"), 0);
        let skipped = dsmt_obs::registry().counter("store.refresh_skipped");
        let before = skipped.get();
        assert_eq!(b.refresh().expect("short-circuit"), 0);
        assert!(
            skipped.get() > before,
            "unchanged settled dir mtime should skip the scan"
        );

        // A new publish bumps the dir mtime, which defeats the
        // short-circuit: the publish is observed, never missed.
        a.publish(vec![(2, value(2))]).unwrap();
        assert_eq!(b.refresh().expect("sees new segment"), 1);
        assert_eq!(b.get(2), Some(&value(2)));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
